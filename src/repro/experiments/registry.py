"""Registry of the reproducible experiments.

Maps every table / figure of the paper (and every ablation) to the callable
that regenerates it, so the CLI, the benchmarks and EXPERIMENTS.md all pull
from a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import ExperimentError
from .ablations import (
    ablation_arrival_rate_sweep,
    ablation_communication_model,
    ablation_dual_cpu,
    ablation_htm_resync,
    ablation_memory_aware_msf,
    ablation_monitor_period,
)
from .config import ExperimentConfig
from .fig1 import run_fig1
from .set1 import run_table5, run_table6
from .set2 import run_table7, run_table8
from .validation import run_table1

__all__ = ["ExperimentEntry", "EXPERIMENTS", "get_experiment", "run_experiment", "experiment_ids"]


def _run_scenario_sweep(config: Optional[ExperimentConfig] = None):
    """Registry adapter for the scenario sweep (import deferred: the scenario
    package pulls in the testbed factories, which this registry must not load
    at import time)."""
    from ..scenarios import run_sweep

    return run_sweep(config=config)


@dataclass(frozen=True)
class ExperimentEntry:
    """One reproducible experiment."""

    experiment_id: str
    description: str
    #: Paper artefact the experiment corresponds to (table / figure number).
    paper_artefact: str
    runner: Callable
    #: Whether the runner accepts an :class:`ExperimentConfig` argument.
    accepts_config: bool = True


EXPERIMENTS: Dict[str, ExperimentEntry] = {
    "table1": ExperimentEntry(
        "table1",
        "Validation of the 1/n shared-CPU model: real vs HTM-simulated completion dates",
        "Table 1",
        lambda config=None: run_table1(),
        accepts_config=False,
    ),
    "fig1": ExperimentEntry(
        "fig1",
        "Usefulness of the HTM: Gantt charts of the two-server / three-task scenario",
        "Figure 1 / Section 2.3",
        lambda config=None: run_fig1(),
        accepts_config=False,
    ),
    "table5": ExperimentEntry(
        "table5",
        "Matrix multiplications at the low arrival rate",
        "Table 5",
        run_table5,
    ),
    "table6": ExperimentEntry(
        "table6",
        "Matrix multiplications at the high arrival rate (memory collapses)",
        "Table 6",
        run_table6,
    ),
    "table7": ExperimentEntry(
        "table7",
        "waste-cpu tasks at the low arrival rate (3 metatasks, means)",
        "Table 7",
        run_table7,
    ),
    "table8": ExperimentEntry(
        "table8",
        "waste-cpu tasks at the high arrival rate (3 metatasks, means)",
        "Table 8",
        run_table8,
    ),
    "ablation-monitor-period": ExperimentEntry(
        "ablation-monitor-period",
        "Stale load reports: MCT vs MSF across monitor periods",
        "design choice (Section 2.2)",
        ablation_monitor_period,
        accepts_config=False,
    ),
    "ablation-htm-resync": ExperimentEntry(
        "ablation-htm-resync",
        "HTM re-anchoring on completion messages on/off",
        "future work #2 (Section 7)",
        ablation_htm_resync,
        accepts_config=False,
    ),
    "ablation-memory-aware-msf": ExperimentEntry(
        "ablation-memory-aware-msf",
        "Memory-aware MSF vs plain MSF / HMCT under memory pressure",
        "future work #1 (Section 7)",
        ablation_memory_aware_msf,
        accepts_config=False,
    ),
    "ablation-communication-model": ExperimentEntry(
        "ablation-communication-model",
        "HTM with / without data-transfer phases",
        "model choice (Section 2.3)",
        ablation_communication_model,
        accepts_config=False,
    ),
    "ablation-dual-cpu": ExperimentEntry(
        "ablation-dual-cpu",
        "Single-CPU vs dual-CPU Xeon servers (Table 2 ambiguity)",
        "testbed hypothesis (Table 2)",
        ablation_dual_cpu,
        accepts_config=False,
    ),
    "ablation-arrival-rate-sweep": ExperimentEntry(
        "ablation-arrival-rate-sweep",
        "Sum-flow of every heuristic across arrival rates",
        "Section 5.3 discussion",
        ablation_arrival_rate_sweep,
        accepts_config=False,
    ),
    "scenario-sweep": ExperimentEntry(
        "scenario-sweep",
        "Every registered scenario + cross-scenario heuristic ranking",
        "beyond the paper (repro.scenarios)",
        _run_scenario_sweep,
    ),
}


def experiment_ids() -> List[str]:
    """Identifiers of every registered experiment."""
    return list(EXPERIMENTS)


def get_experiment(experiment_id: str) -> ExperimentEntry:
    """Look an experiment up by id."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(
    experiment_id: str,
    config: Optional[ExperimentConfig] = None,
    jobs: Optional[int] = None,
):
    """Run one experiment by id, optionally at a custom scale.

    ``jobs`` overrides the campaign parallelism of the configuration: table
    experiments then execute their (heuristic × metatask × repetition) cells
    on a process pool of that size (see :mod:`repro.experiments.campaign`).
    Experiments that do not take a configuration (validation, Fig. 1 and the
    ablations) ignore it and run serially.
    """
    entry = get_experiment(experiment_id)
    if entry.accepts_config:
        if jobs is not None:
            config = (config if config is not None else ExperimentConfig()).with_jobs(jobs)
        return entry.runner(config)
    return entry.runner()
