"""Experiment runner.

Runs one or several heuristics on one or several metatasks over a given
platform, and assembles the per-heuristic columns of the paper's result
tables: number of completed tasks, makespan, sum-flow, max-flow, max-stretch
and the number of tasks that finish sooner than under NetSolve's MCT.

Since the unified results API, a :class:`TableResult` is a *view*: the
numbers live in provenance-stamped :class:`~repro.results.RunRecord` data
carried on :attr:`TableResult.result_set`, and ``columns`` equals
``result_set.pivot().columns``.  :func:`run_table_experiment` is kept as a
deprecated shim over the campaign engine — new code should call
:func:`repro.api.run` (or :func:`repro.experiments.campaign.run_campaign`
directly).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..core.heuristics import Heuristic
from ..metrics.aggregate import aggregate_values
from ..metrics.comparison import PairwiseComparison
from ..metrics.flow import MetricSummary
from ..metrics.report import format_mean_ci, render_markdown_table, render_table
from ..platform.middleware import GridMiddleware, MiddlewareConfig, RunResult
from ..platform.spec import PlatformSpec
from ..results import ResultSet
from ..workload.metatask import Metatask
from ..workload.problems import PAPER_CATALOGUE, ProblemCatalogue
from .config import ExperimentConfig, PAPER_HEURISTIC_ORDER

__all__ = ["HeuristicOutcome", "TableResult", "run_single", "run_table_experiment", "TABLE_ROW_ORDER"]

#: Row order mirroring the layout of Tables 5–8.
TABLE_ROW_ORDER = (
    "completed tasks",
    "makespan",
    "sumflow",
    "maxflow",
    "maxstretch",
    "tasks finishing sooner than MCT",
)


@dataclass
class HeuristicOutcome:
    """Everything recorded for one heuristic across the runs of an experiment."""

    heuristic: str
    runs: List[RunResult] = field(default_factory=list)
    summaries: List[MetricSummary] = field(default_factory=list)
    comparisons: List[PairwiseComparison] = field(default_factory=list)

    def mean_metric(self, name: str) -> float:
        """Mean of one :class:`MetricSummary` field across runs."""
        return aggregate_values(getattr(s, name) for s in self.summaries).mean

    @property
    def mean_sooner(self) -> Optional[float]:
        """Mean count of tasks finishing sooner than the reference, if compared."""
        if not self.comparisons:
            return None
        return aggregate_values(c.sooner for c in self.comparisons).mean


@dataclass
class TableResult:
    """The reproduction of one table of the paper.

    ``columns`` is the aggregated view (heuristic → {metric row: value});
    ``result_set``, when present, holds the per-run records the view was
    pivoted from — persist it with ``result_set.save("table.jsonl")`` and the
    identical table re-renders from the loaded records.
    """

    experiment_id: str
    title: str
    columns: Dict[str, Dict[str, float]]
    outcomes: Dict[str, HeuristicOutcome] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: The records behind the columns (``None`` for hand-built tables such as
    #: the ablations, which aggregate their own single runs).
    result_set: Optional[ResultSet] = None
    #: Cache-hit accounting of the producing campaign when one ran with a
    #: :class:`~repro.store.CampaignStore` attached:
    #: ``{"recovered": cells served from the journal, "executed": cells
    #: simulated}``.  ``None`` for tables not built by ``run_campaign``.
    cache_info: Optional[Dict[str, int]] = None
    #: Full per-cell :class:`~repro.metrics.aggregate.Aggregate` objects
    #: behind ``columns`` (``columns[h][row] == aggregates[h][row].mean``).
    #: Populated by :meth:`~repro.results.ResultSet.pivot`; ``None`` for
    #: hand-built tables.  Cells with two or more repetitions render as
    #: ``mean ± half-width`` (95% Student-t).
    aggregates: Optional[Dict[str, Dict[str, Any]]] = None

    def column(self, heuristic: str) -> Dict[str, float]:
        """The column (metric → value) of one heuristic."""
        return self.columns[heuristic]

    def value(self, heuristic: str, row: str) -> float:
        """One cell of the table."""
        return self.columns[heuristic][row]

    def cell_aggregate(self, heuristic: str, row: str):
        """The :class:`~repro.metrics.aggregate.Aggregate` behind one cell
        (``None`` when the table carries no aggregates)."""
        if self.aggregates is None:
            return None
        return self.aggregates.get(heuristic, {}).get(row)

    def _display_columns(self) -> Dict[str, Dict[str, Any]]:
        """Render-ready cells: ``mean ± half-width`` where a CI exists.

        Single-repetition cells (and tables without aggregates) keep their
        bare mean, so reps=1 campaigns render exactly as they always did.
        """
        if not self.aggregates:
            return self.columns
        display: Dict[str, Dict[str, Any]] = {}
        for name, rows in self.columns.items():
            column_aggregates = self.aggregates.get(name, {})
            cells: Dict[str, Any] = {}
            for row, value in rows.items():
                aggregate = column_aggregates.get(row)
                if aggregate is not None and aggregate.n >= 2:
                    cells[row] = format_mean_ci(value, aggregate.half_ci95)
                else:
                    cells[row] = value
            display[name] = cells
        return display

    def render(self) -> str:
        """Aligned plain-text rendering (same layout as the paper's tables)."""
        return render_table(
            self._display_columns(),
            title=self.title,
            column_order=[h for h in PAPER_HEURISTIC_ORDER if h in self.columns],
            row_order=[r for r in TABLE_ROW_ORDER if any(r in c for c in self.columns.values())],
            notes=self.notes,
        )

    def render_markdown(self) -> str:
        """Markdown rendering for EXPERIMENTS.md."""
        return render_markdown_table(
            self._display_columns(),
            column_order=[h for h in PAPER_HEURISTIC_ORDER if h in self.columns],
            row_order=[r for r in TABLE_ROW_ORDER if any(r in c for c in self.columns.values())],
            notes=self.notes,
        )

    def __str__(self) -> str:
        return self.render()


def run_single(
    platform: PlatformSpec,
    metatask: Metatask,
    heuristic: Union[str, Heuristic],
    middleware_config: Optional[MiddlewareConfig] = None,
    catalogue: ProblemCatalogue = PAPER_CATALOGUE,
) -> RunResult:
    """Run one heuristic once on one metatask (fresh middleware instance)."""
    middleware = GridMiddleware(
        platform=platform,
        heuristic=heuristic,
        catalogue=catalogue,
        config=middleware_config,
    )
    return middleware.run(metatask)


def run_table_experiment(
    experiment_id: str,
    title: str,
    platform: PlatformSpec,
    metatasks: Sequence[Metatask],
    config: ExperimentConfig,
    catalogue: ProblemCatalogue = PAPER_CATALOGUE,
    heuristic_factories: Optional[Mapping[str, Heuristic]] = None,
    notes: Optional[List[str]] = None,
    jobs: Optional[int] = None,
) -> TableResult:
    """Deprecated shim over the campaign engine.

    .. deprecated:: 1.1
        Call :func:`repro.api.run` (for registered experiments) or
        :func:`repro.experiments.campaign.run_campaign` (for custom table
        campaigns) instead; both return the same :class:`TableResult`, record
        for record.  This wrapper only exists so pre-results-API scripts keep
        working, and will be removed in a future major version.
    """
    warnings.warn(
        "run_table_experiment() is deprecated; use repro.api.run() or "
        "repro.experiments.campaign.run_campaign() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from .campaign import run_campaign

    return run_campaign(
        experiment_id=experiment_id,
        title=title,
        platform=platform,
        metatasks=metatasks,
        config=config,
        catalogue=catalogue,
        heuristic_factories=heuristic_factories,
        notes=notes,
        jobs=jobs,
    )
