"""Experiment configuration.

The paper's evaluation (Section 5) fixes a handful of protocol parameters
that this module centralises:

* 500-task metatasks;
* two Poisson arrival rates per experiment set.  The scanned PDF does not
  show the numeric means; they are inferred here (see EXPERIMENTS.md) from
  the published makespans — roughly ``500 × 20 s ≈ 10 000 s`` for the "low
  rate" tables (5 and 7) and ``500 × 15 s ≈ 7 600 s`` for the "high rate"
  tables (6 and 8) — and from the stability limit of the aggregate service
  capacity of each server set;
* the heuristics compared: NetSolve's MCT and the three HTM heuristics.

:class:`ExperimentScale` lets tests and the quickstart run the very same
experiments at a fraction of the size.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple

from ..platform.middleware import MiddlewareConfig

__all__ = [
    "TASKS_PER_METATASK",
    "LOW_RATE_MEAN_S",
    "HIGH_RATE_MEAN_S",
    "PAPER_HEURISTIC_ORDER",
    "ExperimentScale",
    "ExperimentConfig",
    "FULL_SCALE",
    "SMOKE_SCALE",
    "BENCH_SCALE",
    "SCALES",
    "config_field",
    "field_roles",
    "number_determining_fields",
    "execution_only_fields",
]

#: Number of tasks per metatask in the paper's experiments.
TASKS_PER_METATASK = 500

#: Mean inter-arrival time of the "low rate" experiments (Tables 5 and 7).
LOW_RATE_MEAN_S = 20.0

#: Mean inter-arrival time of the "high rate" experiments (Tables 6 and 8).
HIGH_RATE_MEAN_S = 15.0

#: Column order used by every reproduced table.
PAPER_HEURISTIC_ORDER: Tuple[str, ...] = ("mct", "hmct", "mp", "msf")


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs of an experiment (full paper scale vs. quick smoke runs)."""

    name: str
    #: Number of tasks per metatask.
    task_count: int = TASKS_PER_METATASK
    #: Number of distinct metatasks (second experiment set uses 3).
    metatask_count: int = 3
    #: Number of repeated executions per (metatask, heuristic) pair.
    repetitions: int = 1

    def scaled(self, factor: float) -> "ExperimentScale":
        """Return a scale with the task count multiplied by ``factor``."""
        return replace(self, task_count=max(1, int(self.task_count * factor)))


#: The paper's scale: 500-task metatasks.
FULL_SCALE = ExperimentScale(name="full", task_count=TASKS_PER_METATASK, metatask_count=3, repetitions=1)

#: A fast scale for unit/integration tests (seconds, not minutes).
SMOKE_SCALE = ExperimentScale(name="smoke", task_count=60, metatask_count=2, repetitions=1)

#: The scale used by the benchmark harness (a compromise between fidelity and
#: wall-clock time of `pytest benchmarks/`).
BENCH_SCALE = ExperimentScale(name="bench", task_count=200, metatask_count=2, repetitions=1)

#: Named scales, as accepted by the CLI's ``--scale`` and ``repro.api``.
SCALES = {"full": FULL_SCALE, "smoke": SMOKE_SCALE, "bench": BENCH_SCALE}


def config_field(
    *,
    number_determining: bool,
    default: Any = MISSING,
    default_factory: Any = MISSING,
    encode: Optional[str] = None,
    group: Optional[str] = None,
    gate: bool = False,
) -> Any:
    """Declare one :class:`ExperimentConfig` field and its fingerprint role.

    This is the *declarative* form of the fingerprint contract that used to
    live in docstrings: ``number_determining=True`` fields participate in
    :func:`repro.results.config_fingerprint` (they change the numbers a run
    produces), ``False`` fields are execution-only (``--jobs``-like knobs
    that may never fragment the cell cache).  The FP-FIELD lint rule fails
    any field declared without this helper, and the fingerprint derives its
    include/exclude sets from the metadata at runtime — the two can no
    longer drift apart.

    ``encode`` names the canonical JSON encoding of the field's value
    (``"asdict"`` for nested dataclasses, ``"list"`` for tuples).  ``group``
    nests the field under a sub-mapping of the fingerprint payload, and
    ``gate=True`` marks the field whose non-``None`` value switches that
    whole group on (the sequential-stopping knobs only count once armed, so
    fixed-repetition fingerprints stay byte-identical across versions).
    """
    metadata: Dict[str, Any] = {"number_determining": bool(number_determining)}
    if encode is not None:
        metadata["fingerprint_encode"] = encode
    if group is not None:
        metadata["fingerprint_group"] = group
    if gate:
        metadata["fingerprint_gate"] = True
    kwargs: Dict[str, Any] = {"metadata": metadata}
    if default is not MISSING:
        kwargs["default"] = default
    if default_factory is not MISSING:
        kwargs["default_factory"] = default_factory
    return field(**kwargs)


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to run one of the paper's experiments.

    Every field declares whether it is **number-determining** (participates
    in the configuration fingerprint records and cache cells are addressed
    by) or **execution-only** (may change how work is executed, never what
    numbers come out) via :func:`config_field` — see its docstring for the
    contract, and ``tests/store/test_fingerprint.py`` for the guard pinning
    both sides of the boundary.
    """

    scale: ExperimentScale = config_field(
        number_determining=True, default=FULL_SCALE, encode="asdict"
    )
    seed: int = config_field(number_determining=True, default=2003)
    low_rate_s: float = config_field(
        number_determining=True, default=LOW_RATE_MEAN_S
    )
    high_rate_s: float = config_field(
        number_determining=True, default=HIGH_RATE_MEAN_S
    )
    heuristics: Tuple[str, ...] = config_field(
        number_determining=True, default=PAPER_HEURISTIC_ORDER, encode="list"
    )
    reference: str = config_field(number_determining=True, default="mct")
    middleware: MiddlewareConfig = config_field(
        number_determining=True, default=MiddlewareConfig(), encode="asdict"
    )
    #: Worker processes used by the campaign engine (1 = in-process serial).
    #: Seeds derive from cell coordinates, so any value yields the same table.
    jobs: int = config_field(number_determining=False, default=1)
    #: Streaming result observers (:class:`repro.results.CampaignObserver`)
    #: attached to every campaign run with this configuration.  Execution-only
    #: — observers never influence the numbers and are excluded from the
    #: configuration fingerprint stamped on records.
    observers: Tuple = config_field(number_determining=False, default=())
    #: Campaign store (:class:`repro.store.CampaignStore`, or a directory
    #: path) consulted before simulating each cell and appended to as cells
    #: complete.  Execution-only, like ``jobs``: a store can skip work, never
    #: change numbers, so it is excluded from the configuration fingerprint —
    #: cold and warm runs stamp identical hashes.
    store: Optional[object] = config_field(number_determining=False, default=None)
    #: Sequential stopping target: when set, campaigns run repetition rounds
    #: until the relative 95% CI half-width of every (heuristic, metatask)
    #: group's ``ci_metric`` drops to this value (or ``ci_max_reps`` is hit).
    #: **Number-determining** — it changes how many cells run — so it
    #: participates in the configuration fingerprint, unlike ``jobs``; the
    #: whole ``sequential`` group only counts once armed (gate), so every
    #: pre-existing fixed-repetition fingerprint is unchanged.
    ci_target: Optional[float] = config_field(
        number_determining=True, default=None, group="sequential", gate=True
    )
    #: Record metric the stopping rule watches (a per-run metric name).
    ci_metric: str = config_field(
        number_determining=True, default="sum_flow", group="sequential"
    )
    #: Confidence level of the stopping rule's intervals.
    ci_confidence: float = config_field(
        number_determining=True, default=0.95, group="sequential"
    )
    #: Floor on repetitions before the rule may stop (t intervals over 2
    #: values are too wide to trust a stop decision on).
    ci_min_reps: int = config_field(
        number_determining=True, default=3, group="sequential"
    )
    #: Repetition budget: a non-converging campaign stops here with a note.
    ci_max_reps: int = config_field(
        number_determining=True, default=32, group="sequential"
    )

    def with_scale(self, scale: ExperimentScale) -> "ExperimentConfig":
        """Return a copy using a different scale."""
        return replace(self, scale=scale)

    def with_seed(self, seed: int) -> "ExperimentConfig":
        """Return a copy using a different root seed."""
        return replace(self, seed=seed)

    def with_jobs(self, jobs: int) -> "ExperimentConfig":
        """Return a copy using a different campaign parallelism level."""
        return replace(self, jobs=jobs)

    def with_store(self, store) -> "ExperimentConfig":
        """Return a copy attached to a campaign store (or a store path)."""
        return replace(self, store=store)

    def with_ci_target(self, ci_target: Optional[float], **knobs) -> "ExperimentConfig":
        """Return a copy with a sequential stopping target (``None`` disables).

        Extra keyword arguments set the other stopping knobs, e.g.
        ``config.with_ci_target(0.05, ci_max_reps=16)``.
        """
        return replace(self, ci_target=ci_target, **knobs)

    def middleware_for(self, heuristic: str, seed_offset: int = 0) -> MiddlewareConfig:
        """Middleware configuration for a given heuristic run."""
        return replace(self.middleware, seed=self.seed + seed_offset)


def field_roles(config_class: type = ExperimentConfig) -> Dict[str, bool]:
    """``field name → number_determining`` over a config dataclass.

    The runtime face of the FP-FIELD contract: a field added without a
    :func:`config_field` declaration has no ``number_determining`` metadata
    and raises here (and in :func:`repro.results.config_fingerprint`)
    instead of silently landing on either side of the fingerprint boundary.
    """
    roles: Dict[str, bool] = {}
    for config_field_ in fields(config_class):
        try:
            roles[config_field_.name] = bool(
                config_field_.metadata["number_determining"]
            )
        except KeyError:
            raise TypeError(
                f"config field {config_field_.name!r} does not declare its "
                "fingerprint role — define it with "
                "config_field(number_determining=...)"
            ) from None
    return roles


def number_determining_fields(config_class: type = ExperimentConfig) -> Tuple[str, ...]:
    """The fields that participate in the configuration fingerprint."""
    return tuple(
        name for name, determining in field_roles(config_class).items() if determining
    )


def execution_only_fields(config_class: type = ExperimentConfig) -> Tuple[str, ...]:
    """The fields excluded from the fingerprint (may never fragment the cache)."""
    return tuple(
        name
        for name, determining in field_roles(config_class).items()
        if not determining
    )
