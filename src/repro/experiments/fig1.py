"""The "usefulness of the HTM" scenario (Section 2.3 and Fig. 1).

Two identical servers each execute one task submitted at time 0; the tasks
have different durations.  At time 80 a third task arrives.  Without the HTM
the agent only knows that both servers carry the same load and cannot tell
them apart; with the HTM it knows the *remaining* durations and maps the new
task on the server that will free up first, yielding a strictly shorter
completion time.

:func:`run_fig1` reproduces the scenario and returns the HTM's view: the
Gantt chart of each server before and after the hypothetical mapping, the
predicted completion dates, and the decision HMCT takes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.gantt import GanttChart, chart_from_states
from ..core.htm import HistoricalTraceManager
from ..core.records import HtmPrediction
from ..workload.problems import PhaseCosts, ProblemSpec
from ..workload.tasks import Task

__all__ = ["Fig1Result", "run_fig1"]


def _problem(name: str, compute_s: float) -> ProblemSpec:
    """A compute-only problem with identical cost on both servers."""
    return ProblemSpec(
        name=name,
        family="fig1",
        parameter=int(compute_s),
        input_mb=0.0,
        output_mb=0.0,
        compute_mflop=compute_s,
        server_costs={
            "server-1": PhaseCosts(0.0, compute_s, 0.0),
            "server-2": PhaseCosts(0.0, compute_s, 0.0),
        },
    )


@dataclass
class Fig1Result:
    """Outcome of the Fig. 1 scenario."""

    #: Remaining durations of T1 and T2 at the arrival of the new task.
    remaining: Dict[str, float]
    #: HTM predictions of mapping the new task on each server.
    predictions: Dict[str, HtmPrediction]
    #: Server chosen by HMCT (minimum predicted completion date).
    chosen_server: str
    #: Gantt charts of each server *with* the new task mapped on it.
    charts: Dict[str, GanttChart]

    def render(self) -> str:
        """Textual reproduction of the figure: both candidate Gantt charts."""
        lines = [
            "Fig. 1 scenario — two identical servers, a third task arrives at t=80",
            f"remaining durations at t=80: {self.remaining}",
            "",
        ]
        for server in sorted(self.charts):
            prediction = self.predictions[server]
            lines.append(
                f"--- if task3 were mapped on {server} "
                f"(predicted completion {prediction.new_task_completion:.1f}s, "
                f"sum of perturbations {prediction.sum_perturbation:.1f}s) ---"
            )
            lines.append(self.charts[server].render())
            lines.append("")
        lines.append(f"HMCT decision: map task3 on {self.chosen_server}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def run_fig1(
    duration_t1: float = 100.0,
    duration_t2: float = 200.0,
    duration_t3: float = 100.0,
    arrival_t3: float = 80.0,
) -> Fig1Result:
    """Run the Fig. 1 scenario with the given (compute-only) durations."""
    htm = HistoricalTraceManager()
    problems = {
        "t1": _problem("fig1-t1", duration_t1),
        "t2": _problem("fig1-t2", duration_t2),
        "t3": _problem("fig1-t3", duration_t3),
    }
    for server in ("server-1", "server-2"):
        htm.register_server(server, lambda p, s=server: p.costs_on(s))

    task1 = Task(task_id="task1", problem=problems["t1"], arrival=0.0)
    task2 = Task(task_id="task2", problem=problems["t2"], arrival=0.0)
    task3 = Task(task_id="task3", problem=problems["t3"], arrival=arrival_t3)

    htm.commit("server-1", task1, now=0.0)
    htm.commit("server-2", task2, now=0.0)

    htm.advance_to(arrival_t3)
    remaining = {
        "server-1 (task1)": max(0.0, duration_t1 - arrival_t3),
        "server-2 (task2)": max(0.0, duration_t2 - arrival_t3),
    }

    predictions = {
        server: htm.predict(server, task3, arrival_t3) for server in ("server-1", "server-2")
    }
    chosen = min(predictions.values(), key=lambda p: p.new_task_completion).server

    charts: Dict[str, GanttChart] = {}
    for server, prediction in predictions.items():
        clone = htm.trace(server).network.copy()
        clone.add_task(
            "task3",
            arrival=arrival_t3,
            stages=htm._stages_for(htm.trace(server), task3),
            now=arrival_t3,
        )
        clone.run_to_completion()
        charts[server] = chart_from_states(server, clone.tasks())

    return Fig1Result(
        remaining=remaining,
        predictions=predictions,
        chosen_server=chosen,
        charts=charts,
    )
