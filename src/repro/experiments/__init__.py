"""Experiment harness reproducing every table and figure of the paper."""

from .config import (
    BENCH_SCALE,
    FULL_SCALE,
    HIGH_RATE_MEAN_S,
    LOW_RATE_MEAN_S,
    PAPER_HEURISTIC_ORDER,
    SCALES,
    SMOKE_SCALE,
    TASKS_PER_METATASK,
    ExperimentConfig,
    ExperimentScale,
)
from .campaign import (
    CellWork,
    MultiprocessingExecutor,
    RunCell,
    SerialExecutor,
    create_executor,
    derive_seed_offset,
    plan_cells,
    run_campaign,
)
from .fig1 import Fig1Result, run_fig1
from .registry import EXPERIMENTS, ExperimentEntry, experiment_ids, get_experiment, run_experiment
from .runner import HeuristicOutcome, TableResult, run_single, run_table_experiment
from .set1 import run_table5, run_table6
from .set2 import run_table7, run_table8
from .validation import ValidationResult, ValidationRow, run_table1, table1_metatasks

__all__ = [
    "ExperimentConfig",
    "ExperimentScale",
    "FULL_SCALE",
    "SMOKE_SCALE",
    "BENCH_SCALE",
    "SCALES",
    "TASKS_PER_METATASK",
    "LOW_RATE_MEAN_S",
    "HIGH_RATE_MEAN_S",
    "PAPER_HEURISTIC_ORDER",
    "TableResult",
    "HeuristicOutcome",
    "run_single",
    "run_table_experiment",
    "run_campaign",
    "RunCell",
    "CellWork",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "create_executor",
    "plan_cells",
    "derive_seed_offset",
    "run_table1",
    "table1_metatasks",
    "ValidationResult",
    "ValidationRow",
    "run_fig1",
    "Fig1Result",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
    "EXPERIMENTS",
    "ExperimentEntry",
    "experiment_ids",
    "get_experiment",
    "run_experiment",
]
