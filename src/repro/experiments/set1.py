"""First experiment set — matrix multiplications (Tables 5 and 6).

Testbed: servers chamagne, pulney, cabestan and artimon, agent xrousse,
client zanzibar (Table 2).  The metatask is made of 500 multiplications of
square matrices of size 1200, 1500 or 1800 (uniform mix, costs of Table 3);
arrivals are Poisson.

* Table 5 — low rate (mean inter-arrival 20 s): every heuristic completes all
  tasks; the HTM heuristics improve the sum-flow / max-flow / max-stretch
  without degrading the makespan.
* Table 6 — high rate (mean 15 s): MCT and HMCT overload the fastest servers
  whose memory runs out; servers collapse, NetSolve's fault tolerance saves
  most of MCT's tasks but HMCT loses many; MP and MSF complete everything.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..workload.testbed import first_set_platform, matmul_metatask
from .config import ExperimentConfig, FULL_SCALE
from .campaign import run_campaign
from .runner import TableResult

__all__ = ["run_table5", "run_table6"]


def _metatask(config: ExperimentConfig, rate: float, label: str):
    rng = np.random.default_rng(config.seed)
    return matmul_metatask(
        count=config.scale.task_count,
        mean_interarrival=rate,
        rng=rng,
        name=f"{label}-{config.scale.name}",
    )


def run_table5(config: Optional[ExperimentConfig] = None) -> TableResult:
    """Reproduce Table 5 (matrix multiplications, low arrival rate)."""
    config = config if config is not None else ExperimentConfig(scale=FULL_SCALE)
    metatask = _metatask(config, config.low_rate_s, "table5-matmul")
    return run_campaign(
        experiment_id="table5",
        title=(
            f"Table 5 — matrix multiplications, Poisson mean {config.low_rate_s:g}s, "
            f"{config.scale.task_count} tasks"
        ),
        platform=first_set_platform(),
        metatasks=[metatask],
        config=config,
        notes=[
            "servers: chamagne, pulney, cabestan, artimon (Table 2)",
            "memory model enabled; collapse possible but not expected at this rate",
        ],
    )


def run_table6(config: Optional[ExperimentConfig] = None) -> TableResult:
    """Reproduce Table 6 (matrix multiplications, high arrival rate)."""
    config = config if config is not None else ExperimentConfig(scale=FULL_SCALE)
    metatask = _metatask(config, config.high_rate_s, "table6-matmul")
    return run_campaign(
        experiment_id="table6",
        title=(
            f"Table 6 — matrix multiplications, Poisson mean {config.high_rate_s:g}s, "
            f"{config.scale.task_count} tasks"
        ),
        platform=first_set_platform(),
        metatasks=[metatask],
        config=config,
        notes=[
            "memory pressure: MCT/HMCT overload the fastest servers which may collapse",
            "NetSolve fault tolerance (resubmission) applies to MCT only, as in the paper",
        ],
    )
