"""Model validation — Table 1 of the paper.

The paper validates the ``1/n`` shared-CPU model by running two small
metatasks of matrix multiplications on a real (time-shared) LINUX machine and
comparing the measured completion dates with the dates simulated by the HTM:
"We have shown small variations between the simulated and real execution
dates (a mean of less than 3% with regard to the duration)".

Here the "real" execution is the ground-truth platform server with CPU speed
noise enabled (the simulator's stand-in for a non-dedicated machine), and the
"simulated" dates come from the Historical Trace Manager fed only with the
static task descriptions — exactly the information flow of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.htm import HistoricalTraceManager
from ..platform.faults import MemoryModel, SpeedNoiseModel
from ..platform.middleware import GridMiddleware, MiddlewareConfig
from ..platform.spec import PlatformSpec
from ..workload.metatask import Metatask, MetataskItem
from ..workload.problems import PAPER_CATALOGUE, matmul_problem
from ..workload.testbed import paper_platform

__all__ = [
    "TABLE1_METATASK_A",
    "TABLE1_METATASK_B",
    "ValidationRow",
    "ValidationResult",
    "table1_metatasks",
    "run_table1",
]

#: First metatask of Table 1: (arrival date, matrix size).
TABLE1_METATASK_A: Tuple[Tuple[float, int], ...] = (
    (33.00, 1500),
    (59.92, 1200),
    (73.92, 1800),
)

#: Second metatask of Table 1: (arrival date, matrix size).
TABLE1_METATASK_B: Tuple[Tuple[float, int], ...] = (
    (29.41, 1500),
    (56.43, 1200),
    (70.42, 1800),
    (96.41, 1200),
    (121.43, 1500),
    (140.41, 1200),
    (166.42, 1800),
    (181.45, 1200),
    (206.41, 1200),
)


@dataclass(frozen=True)
class ValidationRow:
    """One row of the reproduced Table 1."""

    task_id: str
    arrival: float
    matrix_size: int
    real_completion: float
    simulated_completion: float

    @property
    def difference(self) -> float:
        """Real minus simulated completion date."""
        return self.real_completion - self.simulated_completion

    @property
    def percent_error(self) -> float:
        """``100 × |difference| / real duration`` (the paper's definition)."""
        duration = self.real_completion - self.arrival
        if duration <= 0:
            return 0.0
        return 100.0 * abs(self.difference) / duration


@dataclass
class ValidationResult:
    """The reproduced Table 1: per-task rows and the aggregate error."""

    server: str
    rows: List[ValidationRow] = field(default_factory=list)

    @property
    def mean_percent_error(self) -> float:
        """Mean of the per-task percentage errors."""
        if not self.rows:
            return 0.0
        return sum(row.percent_error for row in self.rows) / len(self.rows)

    @property
    def max_percent_error(self) -> float:
        """Largest per-task percentage error."""
        return max((row.percent_error for row in self.rows), default=0.0)

    def render(self) -> str:
        """Plain-text rendering mirroring Table 1's columns."""
        header = (
            f"{'task':>16} {'arrival':>9} {'size':>6} {'real C':>10} {'sim C':>10} "
            f"{'diff':>8} {'% error':>8}"
        )
        lines = [f"Table 1 reproduction on server {self.server}", header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.task_id:>16} {row.arrival:>9.2f} {row.matrix_size:>6d} "
                f"{row.real_completion:>10.2f} {row.simulated_completion:>10.2f} "
                f"{row.difference:>8.2f} {row.percent_error:>8.2f}"
            )
        lines.append(f"mean % error: {self.mean_percent_error:.2f}   max: {self.max_percent_error:.2f}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def table1_metatasks() -> List[Metatask]:
    """The two Table 1 metatasks as :class:`Metatask` objects."""
    metatasks = []
    for name, entries in (("table1-A", TABLE1_METATASK_A), ("table1-B", TABLE1_METATASK_B)):
        items = tuple(
            MetataskItem(index=i, problem=matmul_problem(size), arrival=arrival)
            for i, (arrival, size) in enumerate(sorted(entries))
        )
        metatasks.append(Metatask(name=name, items=items))
    return metatasks


def _single_server_platform(server: str) -> PlatformSpec:
    return paper_platform([server])


def run_table1(
    server: str = "artimon",
    metatasks: Optional[Sequence[Metatask]] = None,
    noise: Optional[SpeedNoiseModel] = SpeedNoiseModel(relative_sigma=0.02, period_s=20.0),
    seed: int = 2003,
) -> ValidationResult:
    """Reproduce Table 1: real vs HTM-simulated completion dates.

    Parameters
    ----------
    server:
        The single server the metatasks run on (the paper does not name it;
        ``artimon`` gives unloaded durations closest to the published ones).
    metatasks:
        Defaults to the two metatasks of Table 1.
    noise:
        Speed noise applied to the *real* execution only (the HTM never sees
        it); set to ``None`` for a noiseless sanity check (errors ≈ 0).
    """
    metatasks = list(metatasks) if metatasks is not None else table1_metatasks()
    platform = _single_server_platform(server)
    result = ValidationResult(server=server)

    for index, metatask in enumerate(metatasks):
        # --- real execution: ground-truth platform with noise ------------- #
        config = MiddlewareConfig(
            memory_enabled=False,
            noise_model=noise,
            seed=seed + index,
            monitor_period_s=30.0,
        )
        middleware = GridMiddleware(platform, heuristic="hmct", config=config)
        run = middleware.run(metatask)

        # --- simulated execution: a stand-alone HTM ----------------------- #
        htm = HistoricalTraceManager(resync_on_completion=False)
        costs_provider = middleware.servers[server].costs_for_problem_spec
        htm.register_server(server, costs_provider)
        for task in sorted(run.tasks, key=lambda t: t.arrival):
            htm.commit(server, task, task.arrival)
        simulated = htm.trace(server).network.copy().run_to_completion()

        for task in sorted(run.tasks, key=lambda t: t.arrival):
            if not task.completed:
                continue
            result.rows.append(
                ValidationRow(
                    task_id=task.task_id,
                    arrival=task.arrival,
                    matrix_size=task.problem.parameter,
                    real_completion=task.completion_time,
                    simulated_completion=float(simulated[task.task_id]),
                )
            )
    return result
