"""Declarative scheduling scenarios.

A :class:`Scenario` bundles everything that defines one evaluation *regime*:
a platform generator, a workload family, an arrival process and an optional
fault/churn schedule.  Scenarios are declarative — they name factories, not
instances — and materialise against an :class:`ExperimentConfig`, so the same
scenario runs at ``smoke``, ``bench`` or ``full`` scale (arrival profiles and
fault windows stretch with the expected span of the run).

:data:`SCENARIO_REGISTRY` is the named catalogue (``paper-low-rate``,
``burst-storm``, ``diurnal-week``, ...).  :func:`run_scenario` executes one
scenario through the campaign engine of :mod:`repro.experiments.campaign`:
cells are seeded from ``(scenario, metatask, repetition)`` coordinates — the
scenario contributes a CRC-derived base offset, the cells their usual
coordinate offsets — so any ``--jobs`` level reproduces the same table byte
for byte, and adding a scenario to the registry never changes another
scenario's numbers.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import ExperimentError
from ..experiments.campaign import run_campaign
from ..experiments.config import ExperimentConfig, FULL_SCALE, PAPER_HEURISTIC_ORDER
from ..platform.faults import FaultSchedule, OutageWindow, SlowdownWindow
from ..platform.spec import PlatformSpec
from ..workload.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    MarkovModulatedArrivals,
    MergedArrivals,
    PoissonArrivals,
    RampArrivals,
)
from ..workload.metatask import Metatask, generate_metatask
from ..workload.problems import MATMUL_PROBLEMS, WASTECPU_PROBLEMS
from ..workload.testbed import first_set_platform, second_set_platform
from .platforms import homogeneous_farm, power_law_farm, replicated_paper_farm

__all__ = [
    "Scenario",
    "SCENARIO_REGISTRY",
    "scenario_names",
    "get_scenario",
    "scenario_seed_offset",
    "scenario_config",
    "build_scenario_metatasks",
    "run_scenario",
]

#: Factories materialised against the declaring scenario and the run's
#: configuration: profiles scale through ``scenario.expected_span_s(config)``
#: and the scenario's declared ``mean_interarrival_s``.
ArrivalsFactory = Callable[["Scenario", ExperimentConfig], ArrivalProcess]
ScheduleFactory = Callable[["Scenario", ExperimentConfig], FaultSchedule]

#: Problem families a scenario can draw its tasks from.
_FAMILIES = {
    "matmul": lambda: [MATMUL_PROBLEMS[k] for k in sorted(MATMUL_PROBLEMS)],
    "wastecpu": lambda: [WASTECPU_PROBLEMS[k] for k in sorted(WASTECPU_PROBLEMS)],
}


@dataclass(frozen=True)
class Scenario:
    """One named evaluation regime for the scheduling heuristics.

    Parameters
    ----------
    name / description / regime:
        Identity and the load regime the scenario stresses (``"baseline"``,
        ``"bursty"``, ``"diurnal"``, ``"ramping"``, ``"heterogeneous"``,
        ``"churn"`` ...); the regime labels the cross-scenario ranking rows.
    platform_factory:
        Zero-argument callable building the :class:`PlatformSpec`.
    problem_family:
        ``"matmul"`` or ``"wastecpu"`` (Tables 3 / 4 of the paper).
    arrivals:
        Callable mapping ``(scenario, config)`` to an :class:`ArrivalProcess`;
        receiving the pair lets diurnal periods, ramp windows, etc. stretch
        with :meth:`expected_span_s` and the declared mean.
    mean_interarrival_s:
        The scenario's *nominal* gap — the single reference value the
        factories scale from (via :meth:`expected_span_s` or directly), so a
        scenario's load level is declared in one place.  For non-homogeneous
        profiles the realized average can differ from the nominal value
        (e.g. a ramp's time-averaged rate exceeds its nominal rate once the
        fast phase dominates); treat :meth:`expected_span_s` as an order-of-
        magnitude yardstick, not an exact arrival horizon.
    fault_schedule:
        Optional callable mapping ``(scenario, config)`` to a
        :class:`FaultSchedule` (scheduled outages / slowdowns).
    heuristics / reference:
        The compared heuristics and the pairwise-comparison reference.
    notes:
        Free-form lines surfaced in the rendered table.
    """

    name: str
    description: str
    regime: str
    platform_factory: Callable[[], PlatformSpec]
    problem_family: str
    arrivals: ArrivalsFactory
    mean_interarrival_s: float
    fault_schedule: Optional[ScheduleFactory] = None
    heuristics: Tuple[str, ...] = PAPER_HEURISTIC_ORDER
    reference: str = "mct"
    notes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.problem_family not in _FAMILIES:
            raise ExperimentError(
                f"unknown problem family {self.problem_family!r}; "
                f"available: {sorted(_FAMILIES)}"
            )
        if self.reference not in self.heuristics:
            raise ExperimentError(
                f"reference {self.reference!r} is not among heuristics {self.heuristics}"
            )
        if self.mean_interarrival_s <= 0:
            raise ExperimentError("mean_interarrival_s must be strictly positive")

    def expected_span_s(self, config: ExperimentConfig) -> float:
        """Rough duration of the arrival window at this configuration's scale.

        ``task_count × mean_interarrival_s`` — exact for homogeneous Poisson
        scenarios, an upper-bound-flavoured estimate for bursty/ramping ones
        (whose realized average rate can exceed the nominal rate).  Fault
        windows placed late in the span should use conservative fractions.
        """
        return config.scale.task_count * self.mean_interarrival_s

    def problems(self) -> List:
        """The problem specs of the scenario's family, in stable order."""
        return _FAMILIES[self.problem_family]()


def scenario_seed_offset(name: str) -> int:
    """Deterministic per-scenario seed base, derived from the name only.

    The offset is a multiple of 1 000 000, far above any cell coordinate
    offset (``metatask_index * 1000 + repetition``), so scenario streams never
    collide with each other or with the paper tables' streams — and adding or
    reordering registry entries cannot change any existing scenario's numbers.
    """
    return (zlib.crc32(name.encode("utf-8")) % 1_000_003) * 1_000_000


def build_scenario_metatasks(scenario: Scenario, config: ExperimentConfig) -> List[Metatask]:
    """Draw the scenario's metatasks (same draws for any executor / jobs level).

    Each metatask seeds its generator from the ``(root seed, scenario CRC,
    metatask index)`` triple, so metatask *i* of a scenario is identical no
    matter how many metatasks are drawn or which scenarios ran before.
    """
    arrivals = scenario.arrivals(scenario, config)
    problems = scenario.problems()
    crc = zlib.crc32(scenario.name.encode("utf-8"))
    metatasks = []
    for index in range(config.scale.metatask_count):
        rng = np.random.default_rng([config.seed % 2**32, crc, index])
        metatasks.append(
            generate_metatask(
                name=f"{scenario.name}-{config.scale.name}-m{index}",
                problems=problems,
                count=config.scale.task_count,
                arrivals=arrivals,
                rng=rng,
            )
        )
    return metatasks


def scenario_config(scenario: Scenario, config: ExperimentConfig) -> ExperimentConfig:
    """The effective configuration a scenario runs under.

    Folds the scenario's identity into ``config``: the CRC-derived seed base,
    the compared heuristics and reference, and the materialised fault
    schedule.  This is the single place the folding happens — both
    :func:`run_scenario` and the profiling harness
    (:mod:`repro.obs.profile`) build their campaigns from it, so a profiled
    run simulates exactly the cells a scenario run would.
    """
    middleware = config.middleware
    if scenario.fault_schedule is not None:
        middleware = replace(middleware, fault_schedule=scenario.fault_schedule(scenario, config))
    return replace(
        config,
        seed=config.seed + scenario_seed_offset(scenario.name),
        heuristics=scenario.heuristics,
        reference=scenario.reference,
        middleware=middleware,
    )


def run_scenario(
    scenario: Union[str, Scenario],
    config: Optional[ExperimentConfig] = None,
    jobs: Optional[int] = None,
):
    """Run one scenario through the campaign engine; returns a ``TableResult``.

    ``jobs`` (or ``config.jobs``) sets the campaign parallelism; results are
    byte-identical at any level because every cell's seed derives from its
    coordinates plus the scenario's CRC base offset.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    config = config if config is not None else ExperimentConfig(scale=FULL_SCALE)

    effective = scenario_config(scenario, config)
    metatasks = build_scenario_metatasks(scenario, effective)
    notes = [f"scenario: {scenario.name} ({scenario.regime}); {scenario.description}"]
    notes.extend(scenario.notes)
    return run_campaign(
        experiment_id=f"scenario-{scenario.name}",
        title=(
            f"Scenario {scenario.name} — {scenario.description} "
            f"({config.scale.task_count} tasks × {config.scale.metatask_count} metatasks)"
        ),
        platform=scenario.platform_factory(),
        metatasks=metatasks,
        config=effective,
        notes=notes,
        jobs=jobs,
    )


# --------------------------------------------------------------------------- #
# the named registry
# --------------------------------------------------------------------------- #
def _poisson_arrivals(scenario: Scenario, config: ExperimentConfig) -> ArrivalProcess:
    """Homogeneous Poisson at the scenario's declared mean."""
    return PoissonArrivals(scenario.mean_interarrival_s)


def _burst_storm_arrivals(scenario: Scenario, config: ExperimentConfig) -> ArrivalProcess:
    # A steady trickle superposed with on-off storms: bursts pack arrivals
    # every 5 s for ~2 simulated minutes, then go silent for ~4 minutes.  The
    # background rate is derived so the superposition's average gap equals the
    # scenario's declared mean: background = 1/mean − duty/burst_gap.
    burst_gap = 5.0
    mean_burst_s, mean_quiet_s = 120.0, 240.0
    duty = mean_burst_s / (mean_burst_s + mean_quiet_s)
    background_rate = 1.0 / scenario.mean_interarrival_s - duty / burst_gap
    if background_rate <= 0:
        raise ExperimentError(
            f"burst parameters alone exceed the declared mean rate "
            f"1/{scenario.mean_interarrival_s:g}; lower mean_interarrival_s"
        )
    return MergedArrivals(
        [
            PoissonArrivals(1.0 / background_rate),
            MarkovModulatedArrivals(
                burst_interarrival=burst_gap,
                quiet_interarrival=math.inf,
                mean_burst_s=mean_burst_s,
                mean_quiet_s=mean_quiet_s,
            ),
        ]
    )


def _diurnal_week_arrivals(scenario: Scenario, config: ExperimentConfig) -> ArrivalProcess:
    # Seven "days" over the run, whatever the scale: the period stretches so
    # a smoke run sees the same number of peaks as a full one.
    return DiurnalArrivals(
        mean_interarrival=scenario.mean_interarrival_s,
        amplitude=0.85,
        period_s=scenario.expected_span_s(config) / 7.0,
        phase_rad=-math.pi / 2.0,  # start the week at the load trough
    )


def _ramp_surge_arrivals(scenario: Scenario, config: ExperimentConfig) -> ArrivalProcess:
    # Load doubles-and-doubles: the mean gap shrinks 4x over 70 % of the run.
    mean = scenario.mean_interarrival_s
    return RampArrivals(
        start_interarrival=2.0 * mean,
        end_interarrival=0.5 * mean,
        duration_s=0.7 * scenario.expected_span_s(config),
    )


def _flaky_servers_schedule(scenario: Scenario, config: ExperimentConfig) -> FaultSchedule:
    span = scenario.expected_span_s(config)
    return FaultSchedule(
        windows=(
            # The fastest server of the second testbed drops out mid-run...
            OutageWindow(server="spinnaker", start_s=0.30 * span, end_s=0.45 * span),
            # ... and the second-fastest crawls at 30 % speed for a long spell.
            SlowdownWindow(
                server="artimon", start_s=0.50 * span, end_s=0.80 * span, factor=0.3
            ),
        )
    )


SCENARIO_REGISTRY: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="paper-low-rate",
            description="the paper's Table 5 protocol as a scenario (baseline regime)",
            regime="baseline",
            platform_factory=first_set_platform,
            problem_family="matmul",
            arrivals=_poisson_arrivals,
            mean_interarrival_s=20.0,
            notes=("servers: chamagne, pulney, cabestan, artimon (Table 2)",),
        ),
        Scenario(
            name="burst-storm",
            description="steady trickle + Markov-modulated arrival storms (5 s gaps in bursts)",
            regime="bursty",
            platform_factory=first_set_platform,
            problem_family="matmul",
            arrivals=_burst_storm_arrivals,
            mean_interarrival_s=12.0,
            notes=(
                "superposition: Poisson background (mean 60 s) + on-off bursts "
                "(~120 s storms every ~240 s)",
            ),
        ),
        Scenario(
            name="diurnal-week",
            description="sinusoidal day/night load, seven peaks over the run",
            regime="diurnal",
            platform_factory=second_set_platform,
            problem_family="wastecpu",
            arrivals=_diurnal_week_arrivals,
            mean_interarrival_s=20.0,
            notes=("rate swings ±85 % around the paper's low rate; period = span/7",),
        ),
        Scenario(
            name="ramp-surge",
            description="arrival rate ramping 4x up over 70 % of the run, then flat",
            regime="ramping",
            platform_factory=second_set_platform,
            problem_family="wastecpu",
            arrivals=_ramp_surge_arrivals,
            mean_interarrival_s=20.0,
        ),
        Scenario(
            name="hetero-farm-16",
            description="16-server power-law speed mix at 4x the paper's low rate",
            regime="heterogeneous",
            platform_factory=lambda: power_law_farm(16, min_speed_mhz=400.0, alpha=1.5),
            problem_family="wastecpu",
            arrivals=_poisson_arrivals,
            mean_interarrival_s=5.0,
            notes=("speeds are deterministic Pareto(1.5) mid-quantiles from 400 MHz",),
        ),
        Scenario(
            name="homog-farm-8",
            description="8 identical servers — heuristic differences come from timing only",
            regime="homogeneous",
            platform_factory=lambda: homogeneous_farm(8, speed_mhz=1200.0),
            problem_family="wastecpu",
            arrivals=_poisson_arrivals,
            mean_interarrival_s=10.0,
        ),
        Scenario(
            name="paper-farm-12",
            description="12 servers cycling the Table 2 hardware profiles (generic costs)",
            regime="scale-out",
            platform_factory=lambda: replicated_paper_farm(12),
            problem_family="matmul",
            arrivals=_poisson_arrivals,
            mean_interarrival_s=20.0 / 3.0,
            notes=("replicas price tasks via the generic speed model, not Tables 3/4",),
        ),
        Scenario(
            name="flaky-servers",
            description="paper testbed with a mid-run outage and a long 30 % slowdown",
            regime="churn",
            platform_factory=second_set_platform,
            problem_family="wastecpu",
            arrivals=_poisson_arrivals,
            mean_interarrival_s=20.0,
            fault_schedule=_flaky_servers_schedule,
            notes=(
                "spinnaker down over [0.30, 0.45) of the span; "
                "artimon at 30 % speed over [0.50, 0.80)",
            ),
        ),
    )
}


def scenario_names() -> List[str]:
    """Names of every registered scenario, in registry order."""
    return list(SCENARIO_REGISTRY)


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIO_REGISTRY)}"
        ) from None
