"""The scenario subsystem: declarative workload/platform regimes.

The paper evaluates its heuristics on two fixed testbeds under homogeneous
Poisson arrivals.  This package turns that two-testbed reproduction into a
general scheduling-scenario lab:

* platform generators (:mod:`repro.scenarios.platforms`) build farms beyond
  the Table 2 quadruplets — homogeneous, power-law heterogeneous, and
  N-server replicas of the paper machines;
* :class:`Scenario` (:mod:`repro.scenarios.scenario`) composes a platform, a
  workload family, a (possibly non-homogeneous) arrival process and an
  optional fault/churn schedule into one named, declarative regime;
* :data:`SCENARIO_REGISTRY` names the stock regimes (``paper-low-rate``,
  ``burst-storm``, ``diurnal-week``, ``hetero-farm-16``, ``flaky-servers``,
  ...), runnable via ``repro scenario run <name>``;
* :func:`run_sweep` (:mod:`repro.scenarios.sweep`) runs a heuristic ×
  scenario grid through the campaign engine and ranks the heuristics per
  regime — byte-identical at any ``--jobs`` level, with every run's record
  collected into one persistable :class:`~repro.results.ResultSet`
  (``sweep_scenarios`` is the deprecated alias).
"""

from .platforms import homogeneous_farm, power_law_farm, replicated_paper_farm
from .scenario import (
    SCENARIO_REGISTRY,
    Scenario,
    build_scenario_metatasks,
    get_scenario,
    run_scenario,
    scenario_names,
    scenario_seed_offset,
)
from .sweep import ScenarioSweepResult, run_sweep, sweep_scenarios

__all__ = [
    "Scenario",
    "SCENARIO_REGISTRY",
    "scenario_names",
    "get_scenario",
    "scenario_seed_offset",
    "build_scenario_metatasks",
    "run_scenario",
    "ScenarioSweepResult",
    "run_sweep",
    "sweep_scenarios",
    "homogeneous_farm",
    "power_law_farm",
    "replicated_paper_farm",
]
