"""Platform generators beyond the paper's two server quadruplets.

The paper evaluates on exactly two four-server testbeds drawn from Table 2.
The scenario subsystem needs platforms of arbitrary size and heterogeneity:

* :func:`homogeneous_farm` — N identical servers (the clean baseline where
  every heuristic difference comes from timing, not speed);
* :func:`power_law_farm` — N servers whose speeds follow a Pareto-style
  power law, deterministically sampled at mid-quantiles so the same call
  always builds the same platform (no RNG involved);
* :func:`replicated_paper_farm` — N servers cycling through the Table 2
  machines' hardware profiles (an "N-server variant" of the paper testbed;
  replicas carry suffixed names, so costs come from the catalogue's generic
  speed model rather than the per-machine measured tables — documented in
  EXPERIMENTS.md).

Every generator returns a complete :class:`~repro.platform.spec.PlatformSpec`
with one synthetic agent and one synthetic client, mirroring the naming
convention of :func:`repro.workload.testbed.synthetic_platform`.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..platform.spec import MachineRole, MachineSpec, PAPER_MACHINES, PlatformSpec
from ..workload.testbed import synthetic_agent_and_client

__all__ = [
    "homogeneous_farm",
    "power_law_farm",
    "replicated_paper_farm",
]


def _agent_and_client(machines: Dict[str, MachineSpec]) -> Dict[str, MachineSpec]:
    machines.update(synthetic_agent_and_client())
    return machines


def homogeneous_farm(
    n_servers: int,
    speed_mhz: float = 1200.0,
    memory_mb: float = 512.0,
    swap_mb: float = 512.0,
) -> PlatformSpec:
    """A farm of ``n_servers`` identical servers (``farm-0`` ... ``farm-N-1``)."""
    if n_servers < 1:
        raise ValueError("n_servers must be at least 1")
    machines: Dict[str, MachineSpec] = {}
    for i in range(n_servers):
        name = f"farm-{i}"
        machines[name] = MachineSpec(
            name=name, processor="synthetic homogeneous", speed_mhz=speed_mhz,
            memory_mb=memory_mb, swap_mb=swap_mb, role=MachineRole.SERVER,
        )
    return PlatformSpec(machines=_agent_and_client(machines))


def power_law_farm(
    n_servers: int,
    min_speed_mhz: float = 400.0,
    alpha: float = 1.5,
    memory_mb: float = 512.0,
    swap_mb: float = 512.0,
) -> PlatformSpec:
    """A heterogeneous farm whose server speeds follow a power law.

    Speeds are the Pareto(α, scale=``min_speed_mhz``) inverse CDF evaluated at
    the deterministic mid-quantiles ``q_i = (i + 0.5) / n``:
    ``speed_i = min_speed · (1 − q_i)^(−1/α)``.  Smaller α → heavier tail →
    a few servers that dwarf the rest, the regime where greedy MCT piles work
    onto the giants and the HTM heuristics should shine.  Being quantile-based
    (not sampled), the same parameters always produce the same platform.
    """
    if n_servers < 1:
        raise ValueError("n_servers must be at least 1")
    if alpha <= 0:
        raise ValueError("alpha must be strictly positive")
    if min_speed_mhz <= 0:
        raise ValueError("min_speed_mhz must be strictly positive")
    machines: Dict[str, MachineSpec] = {}
    for i in range(n_servers):
        q = (i + 0.5) / n_servers
        speed = min_speed_mhz * (1.0 - q) ** (-1.0 / alpha)
        name = f"plaw-{i}"
        machines[name] = MachineSpec(
            name=name, processor=f"synthetic power-law(alpha={alpha:g})",
            speed_mhz=round(speed, 1), memory_mb=memory_mb, swap_mb=swap_mb,
            role=MachineRole.SERVER,
        )
    return PlatformSpec(machines=_agent_and_client(machines))


#: Hardware profiles cycled through by :func:`replicated_paper_farm` — the six
#: server rows of Table 2, in the paper's order.
PAPER_SERVER_PROFILES: Tuple[str, ...] = (
    "chamagne", "cabestan", "artimon", "pulney", "valette", "spinnaker",
)


def replicated_paper_farm(
    n_servers: int,
    profiles: Sequence[str] = PAPER_SERVER_PROFILES,
) -> PlatformSpec:
    """An N-server farm cycling through the Table 2 machine profiles.

    Server ``i`` copies the hardware of ``profiles[i % len(profiles)]`` under
    the name ``{profile}-{i}``.  Because the names differ from the original
    machines, *every* replica (including the first) prices tasks through the
    catalogue's generic speed model — replicas of the same profile are exact
    peers, which keeps the farm's behaviour uniform per profile.
    """
    if n_servers < 1:
        raise ValueError("n_servers must be at least 1")
    unknown = [p for p in profiles if p not in PAPER_MACHINES]
    if unknown:
        raise ValueError(f"unknown Table 2 machines: {unknown}")
    machines: Dict[str, MachineSpec] = {}
    for i in range(n_servers):
        base = PAPER_MACHINES[profiles[i % len(profiles)]]
        name = f"{base.name}-{i}"
        machines[name] = MachineSpec(
            name=name, processor=base.processor, speed_mhz=base.speed_mhz,
            memory_mb=base.memory_mb, swap_mb=base.swap_mb,
            role=MachineRole.SERVER, os_reserved_mb=base.os_reserved_mb,
            cpu_count=base.cpu_count,
        )
    return PlatformSpec(machines=_agent_and_client(machines))
