"""Scenario sweeps: run a heuristic × scenario grid and rank per regime.

A sweep runs every requested scenario through the campaign engine and
assembles a cross-scenario summary table ranking the heuristics per regime
(:func:`repro.metrics.comparison.cross_scenario_ranking`).  Determinism is
inherited from :func:`repro.scenarios.scenario.run_scenario`: each scenario's
cell seeds derive from ``(scenario CRC, metatask, repetition)`` coordinates,
so ``--jobs 1`` and ``--jobs 64`` render byte-identical reports, and the
sweep's result is independent of the order scenarios are listed in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ExperimentError
from ..experiments.campaign import METRIC_ROW_TO_SUMMARY_FIELD
from ..experiments.config import ExperimentConfig, FULL_SCALE
from ..metrics.comparison import cross_scenario_ranking, rank_heuristics
from ..metrics.report import render_markdown_table, render_table
from .scenario import get_scenario, run_scenario, scenario_names

__all__ = ["ScenarioSweepResult", "sweep_scenarios"]

#: Metric rows every campaign table produces — the valid ranking tie-breaks
#: ("completed tasks" dominates the ranking and is not itself a tie-break).
_RANKABLE_METRICS = tuple(
    row for row in METRIC_ROW_TO_SUMMARY_FIELD if row != "completed tasks"
)


@dataclass
class ScenarioSweepResult:
    """Everything a scenario sweep produced.

    ``tables`` maps scenario name → the scenario's ``TableResult``;
    ``ranking`` maps heuristic → {scenario: ``"#rank (metric value)"``} and is
    the cross-scenario summary rendered by :meth:`render`.
    """

    metric: str
    tables: Dict[str, object] = field(default_factory=dict)
    ranking: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def best_per_scenario(self) -> Dict[str, str]:
        """The winning heuristic of every scenario (rank #1)."""
        return {
            name: rank_heuristics(table.columns, metric=self.metric)[0]
            for name, table in self.tables.items()
        }

    def render(self) -> str:
        """Per-scenario tables followed by the cross-scenario ranking."""
        parts = [table.render() for table in self.tables.values()]
        parts.append(
            render_table(
                self.ranking,
                title=(
                    f"Cross-scenario ranking — heuristics ranked per scenario "
                    f"(completed tasks first, then {self.metric}; #1 is best)"
                ),
            )
        )
        return "\n\n".join(parts)

    def render_markdown(self) -> str:
        """Markdown rendering (per-scenario tables + ranking) for reports."""
        parts = [
            f"### {name}\n\n{table.render_markdown()}"
            for name, table in self.tables.items()
        ]
        parts.append("### Cross-scenario ranking\n\n" + render_markdown_table(self.ranking))
        return "\n\n".join(parts)

    def __str__(self) -> str:
        return self.render()


def sweep_scenarios(
    names: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
    jobs: Optional[int] = None,
    metric: str = "sumflow",
) -> ScenarioSweepResult:
    """Run scenarios (all registered ones by default) and rank the heuristics.

    Scenarios execute one after the other; *within* each scenario the campaign
    engine fans its cells out over ``jobs`` workers.  Every scenario is seeded
    independently of the sweep composition, so sweeping a subset reproduces
    exactly the numbers of the full sweep's corresponding rows.
    """
    names = list(names) if names is not None else scenario_names()
    if not names:
        raise ExperimentError("a scenario sweep needs at least one scenario")
    duplicates = {n for n in names if names.count(n) > 1}
    if duplicates:
        raise ExperimentError(f"duplicate scenarios in sweep: {sorted(duplicates)}")
    if metric not in _RANKABLE_METRICS:
        # Fail fast: a metric typo must not surface as a KeyError *after*
        # hours of full-scale scenario runs.
        raise ExperimentError(
            f"unknown ranking metric {metric!r}; available: {sorted(_RANKABLE_METRICS)}"
        )
    config = config if config is not None else ExperimentConfig(scale=FULL_SCALE)

    result = ScenarioSweepResult(metric=metric)
    for name in names:
        scenario = get_scenario(name)  # fail fast on typos, before hours of runs
        result.tables[name] = run_scenario(scenario, config=config, jobs=jobs)
    result.ranking = cross_scenario_ranking(
        {name: table.columns for name, table in result.tables.items()},
        metric=metric,
    )
    return result
