"""Scenario sweeps: run a heuristic × scenario grid and rank per regime.

A sweep runs every requested scenario through the campaign engine and
assembles a cross-scenario summary table ranking the heuristics per regime
(:func:`repro.metrics.comparison.cross_scenario_ranking`).  Determinism is
inherited from :func:`repro.scenarios.scenario.run_scenario`: each scenario's
cell seeds derive from ``(scenario CRC, metatask, repetition)`` coordinates,
so ``--jobs 1`` and ``--jobs 64`` render byte-identical reports, and the
sweep's result is independent of the order scenarios are listed in.

Every per-scenario run contributes its provenance-stamped records to one
combined :class:`~repro.results.ResultSet`
(``ScenarioSweepResult.result_set``) — persist it with
``result_set.save("sweep.jsonl")`` and every per-scenario table re-renders
from the loaded records.

The documented entry point is :func:`repro.api.sweep`;
:func:`sweep_scenarios` remains as a deprecated alias.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from ..errors import ExperimentError
from ..experiments.campaign import METRIC_ROW_TO_SUMMARY_FIELD
from ..experiments.config import ExperimentConfig, FULL_SCALE
from ..metrics.comparison import cross_scenario_ranking, rank_heuristics
from ..metrics.report import render_markdown_table, render_table
from ..results import CampaignObserver, ResultSet
from .scenario import get_scenario, run_scenario, scenario_names

__all__ = ["ScenarioSweepResult", "run_sweep", "sweep_scenarios"]

#: Metric rows every campaign table produces — the valid ranking tie-breaks
#: ("completed tasks" dominates the ranking and is not itself a tie-break).
_RANKABLE_METRICS = tuple(
    row for row in METRIC_ROW_TO_SUMMARY_FIELD if row != "completed tasks"
)


@dataclass
class ScenarioSweepResult:
    """Everything a scenario sweep produced.

    ``tables`` maps scenario name → the scenario's ``TableResult``;
    ``ranking`` maps heuristic → {scenario: ``"#rank (metric value)"``} and is
    the cross-scenario summary rendered by :meth:`render`; ``result_set``
    holds every scenario's run records in one persistable set.
    """

    metric: str
    tables: Dict[str, object] = field(default_factory=dict)
    ranking: Dict[str, Dict[str, str]] = field(default_factory=dict)
    result_set: Optional[ResultSet] = None

    def best_per_scenario(self) -> Dict[str, str]:
        """The winning heuristic of every scenario (rank #1)."""
        return {
            name: rank_heuristics(table.columns, metric=self.metric)[0]
            for name, table in self.tables.items()
        }

    def render(self) -> str:
        """Per-scenario tables followed by the cross-scenario ranking."""
        parts = [table.render() for table in self.tables.values()]
        parts.append(
            render_table(
                self.ranking,
                title=(
                    f"Cross-scenario ranking — heuristics ranked per scenario "
                    f"(completed tasks first, then {self.metric}; #1 is best)"
                ),
            )
        )
        return "\n\n".join(parts)

    def render_markdown(self) -> str:
        """Markdown rendering (per-scenario tables + ranking) for reports."""
        parts = [
            f"### {name}\n\n{table.render_markdown()}"
            for name, table in self.tables.items()
        ]
        parts.append("### Cross-scenario ranking\n\n" + render_markdown_table(self.ranking))
        return "\n\n".join(parts)

    def __str__(self) -> str:
        return self.render()


def run_sweep(
    names: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
    jobs: Optional[int] = None,
    metric: str = "sumflow",
    observers: Sequence[CampaignObserver] = (),
    store=None,
) -> ScenarioSweepResult:
    """Run scenarios (all registered ones by default) and rank the heuristics.

    Scenarios execute one after the other; *within* each scenario the campaign
    engine fans its cells out over ``jobs`` workers.  Every scenario is seeded
    independently of the sweep composition, so sweeping a subset reproduces
    exactly the numbers of the full sweep's corresponding rows.

    ``observers`` stream every cell completion of every scenario (on top of
    any observers already attached to ``config.observers``).  ``store`` (a
    :class:`~repro.store.CampaignStore` or directory path, overriding
    ``config.store``) attaches the campaign store to every scenario campaign:
    per-scenario cells already journaled are recovered without simulating, so
    a warm sweep replays in milliseconds with byte-identical records, and a
    sweep killed mid-flight resumes cell-exactly.
    """
    names = list(names) if names is not None else scenario_names()
    if not names:
        raise ExperimentError("a scenario sweep needs at least one scenario")
    duplicates = {n for n in names if names.count(n) > 1}
    if duplicates:
        raise ExperimentError(f"duplicate scenarios in sweep: {sorted(duplicates)}")
    if metric not in _RANKABLE_METRICS:
        # Fail fast: a metric typo must not surface as a KeyError *after*
        # hours of full-scale scenario runs.
        raise ExperimentError(
            f"unknown ranking metric {metric!r}; available: {sorted(_RANKABLE_METRICS)}"
        )
    config = config if config is not None else ExperimentConfig(scale=FULL_SCALE)
    if observers:
        config = replace(config, observers=tuple(config.observers) + tuple(observers))
    store = store if store is not None else config.store
    if store is not None:
        # Resolve once (paths included, also when riding on ``config.store``)
        # so every scenario campaign shares one open journal instead of
        # replaying it per scenario.
        from ..store import open_store

        config = replace(config, store=open_store(store))

    combined = ResultSet(
        meta={
            "experiment_id": "scenario-sweep",
            "title": f"Scenario sweep — {len(names)} scenario(s), ranked by {metric}",
            "metric": metric,
            "scenarios": names,
            "scale": config.scale.name,
            "seed": config.seed,
        }
    )
    result = ScenarioSweepResult(metric=metric, result_set=combined)
    for name in names:
        scenario = get_scenario(name)  # fail fast on typos, before hours of runs
        table = run_scenario(scenario, config=config, jobs=jobs)
        result.tables[name] = table
        combined.extend(table.result_set)
    result.ranking = cross_scenario_ranking(
        {name: table.columns for name, table in result.tables.items()},
        metric=metric,
        # Per-cell aggregates switch on significance-aware ties (``#r=``):
        # heuristics whose CIs overlap share a rank instead of overclaiming
        # "A beats B".  Single-repetition sweeps carry zero-width intervals,
        # so their rankings only mark *exact* metric ties.
        scenario_aggregates={
            name: table.aggregates for name, table in result.tables.items()
        },
    )
    return result


def sweep_scenarios(
    names: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
    jobs: Optional[int] = None,
    metric: str = "sumflow",
) -> ScenarioSweepResult:
    """Deprecated alias of :func:`run_sweep`.

    .. deprecated:: 1.1
        Call :func:`repro.api.sweep` (or :func:`run_sweep`) instead; the
        return value is identical, record for record.
    """
    warnings.warn(
        "sweep_scenarios() is deprecated; use repro.api.sweep() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_sweep(names=names, config=config, jobs=jobs, metric=metric)
