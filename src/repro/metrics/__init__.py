"""Metrics of Section 3 and comparison / aggregation / reporting helpers."""

from .aggregate import Aggregate, aggregate_summaries, aggregate_values
from .comparison import (
    PairwiseComparison,
    compare_runs,
    cross_scenario_ranking,
    rank_heuristic_groups,
    rank_heuristics,
    tasks_finishing_sooner,
)
from .flow import (
    MetricSummary,
    makespan,
    max_flow,
    max_stretch,
    mean_flow,
    mean_stretch,
    stretches,
    sum_flow,
    summarize,
)
from .report import format_mean_ci, format_value, render_markdown_table, render_table

__all__ = [
    "Aggregate",
    "aggregate_summaries",
    "aggregate_values",
    "PairwiseComparison",
    "compare_runs",
    "tasks_finishing_sooner",
    "rank_heuristics",
    "rank_heuristic_groups",
    "cross_scenario_ranking",
    "MetricSummary",
    "makespan",
    "sum_flow",
    "max_flow",
    "max_stretch",
    "mean_flow",
    "mean_stretch",
    "stretches",
    "summarize",
    "format_value",
    "format_mean_ci",
    "render_markdown_table",
    "render_table",
]
