"""Pairwise comparison of heuristics: "tasks that finish sooner".

The paper complements the aggregate metrics with a per-task quality-of-service
indicator: for two heuristics run on the *same* metatask, the number of tasks
whose completion date is strictly earlier under one heuristic than under the
other.  "If we can provide a heuristic where most of the tasks finish sooner
than MCT's without delaying too much other task completion dates ... we can
claim that this heuristic, to the user point of view, outperforms MCT"
(Section 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..workload.tasks import Task
from .report import format_value

__all__ = [
    "PairwiseComparison",
    "completion_map",
    "compare_completion_maps",
    "tasks_finishing_sooner",
    "compare_runs",
    "rank_heuristics",
    "rank_heuristic_groups",
    "cross_scenario_ranking",
]


def completion_map(tasks: Iterable[Task]) -> Dict[str, float]:
    """``task_id → completion date`` over the completed tasks of one run.

    This map is the entire input one run contributes to a pairwise
    comparison, which is why the campaign store can journal it instead of
    whole runs: a cached reference cell compares against fresh candidate
    runs with exactly the numbers a live reference run would produce.
    """
    return {t.task_id: t.completion_time for t in tasks if t.completed}


@dataclass(frozen=True)
class PairwiseComparison:
    """Outcome of comparing one heuristic against a reference on one metatask."""

    candidate: str
    reference: str
    #: Tasks completed by both runs (only those can be compared).
    comparable: int
    #: Tasks finishing strictly sooner under the candidate heuristic.
    sooner: int
    #: Tasks finishing strictly later under the candidate heuristic.
    later: int
    #: Tasks finishing at exactly the same date (rare with real numbers).
    tied: int
    #: Mean completion-date gain (reference − candidate) over comparable tasks.
    mean_gain_s: float

    @property
    def sooner_fraction(self) -> float:
        """Fraction of comparable tasks that finish sooner under the candidate."""
        return self.sooner / self.comparable if self.comparable else 0.0


def tasks_finishing_sooner(
    candidate_tasks: Sequence[Task],
    reference_tasks: Sequence[Task],
    candidate_name: str = "candidate",
    reference_name: str = "reference",
) -> PairwiseComparison:
    """Count the tasks that finish sooner under ``candidate`` than ``reference``.

    Tasks are paired by ``task_id``; tasks that did not complete under both
    heuristics are ignored (they cannot be compared).
    """
    return compare_completion_maps(
        completion_map(candidate_tasks),
        completion_map(reference_tasks),
        candidate_name,
        reference_name,
    )


def compare_completion_maps(
    candidate_completions: Mapping[str, float],
    reference_completions: Mapping[str, float],
    candidate_name: str = "candidate",
    reference_name: str = "reference",
) -> PairwiseComparison:
    """:func:`tasks_finishing_sooner` on pre-extracted completion maps."""
    common = sorted(set(candidate_completions) & set(reference_completions))
    sooner = later = tied = 0
    total_gain = 0.0
    for task_id in common:
        gain = reference_completions[task_id] - candidate_completions[task_id]
        total_gain += gain
        if gain > 1e-9:
            sooner += 1
        elif gain < -1e-9:
            later += 1
        else:
            tied += 1
    return PairwiseComparison(
        candidate=candidate_name,
        reference=reference_name,
        comparable=len(common),
        sooner=sooner,
        later=later,
        tied=tied,
        mean_gain_s=total_gain / len(common) if common else 0.0,
    )


def compare_runs(
    runs: Mapping[str, Sequence[Task]],
    reference: str,
) -> Dict[str, PairwiseComparison]:
    """Compare every run against the reference run (typically ``"mct"``).

    ``runs`` maps heuristic name → task list of the corresponding run on the
    same metatask.  The reference itself is excluded from the result.
    """
    if reference not in runs:
        raise KeyError(f"reference run {reference!r} is missing from the runs mapping")
    reference_tasks = runs[reference]
    return {
        name: tasks_finishing_sooner(tasks, reference_tasks, name, reference)
        for name, tasks in runs.items()
        if name != reference
    }


# --------------------------------------------------------------------------- #
# cross-scenario ranking (the scenario sweep's summary view)
# --------------------------------------------------------------------------- #
def rank_heuristics(
    columns: Mapping[str, Mapping[str, float]],
    metric: str = "sumflow",
) -> List[str]:
    """Rank heuristics from one result table, best first.

    ``columns`` is a ``TableResult.columns``-shaped mapping (heuristic →
    {metric: value}).

    Ordering contract (a strict total order — the result is fully
    deterministic and independent of the mapping's iteration order):

    1. **completed tasks, descending** — a heuristic that loses tasks never
       outranks one that completes more, whatever its flow metrics (the
       paper's Table 6 lesson);
    2. **the given metric, ascending** (lower is better) breaks completion
       ties;
    3. **heuristic name, ascending lexicographically** breaks exact metric
       ties, so two heuristics can never swap places between runs or
       platforms.

    Both the ``"completed tasks"`` row and the tie-break metric must be
    present in every column: silently defaulting either would let the
    ranking degrade without any signal.
    """
    def sort_key(name: str):
        column = columns[name]
        completed = column.get("completed tasks")
        if completed is None:
            raise KeyError(f"column {name!r} has no 'completed tasks' row")
        value = column.get(metric)
        if value is None:
            raise KeyError(f"column {name!r} has no metric {metric!r}")
        return (-completed, value, name)

    return sorted(columns, key=sort_key)


def _metric_interval(aggregate) -> Optional[Tuple[float, float]]:
    """The ``[mean − half, mean + half]`` band of one cell aggregate.

    ``None`` when no usable interval exists (an empty aggregate): a missing
    band never produces a tie.  A single-repetition aggregate has a
    zero-width band, so it only ever ties an *exactly equal* mean.
    """
    mean = aggregate.mean
    if not math.isfinite(mean):
        return None
    half = aggregate.half_ci95
    if not math.isfinite(half):
        half = 0.0
    return (mean - half, mean + half)


def rank_heuristic_groups(
    columns: Mapping[str, Mapping[str, float]],
    metric: str = "sumflow",
    aggregates: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> List[List[str]]:
    """Rank heuristics into **significance-aware tie groups**, best first.

    The order within and across groups is exactly
    :func:`rank_heuristics`'s strict total order; what this adds is the
    grouping: two *adjacent* heuristics fall into the same group when their
    95% confidence intervals on ``metric`` overlap (and they completed the
    same number of tasks) — the data cannot distinguish them, so "A beats B"
    would overclaim.  Groups chain transitively, as in the classic
    underline notation of paired-comparison tables.

    ``aggregates`` is a ``TableResult.aggregates``-shaped mapping (heuristic
    → {metric row: :class:`~repro.metrics.aggregate.Aggregate`}).  Without it
    (or for heuristics missing from it) every group is a singleton and the
    result degrades to the strict ranking — single-repetition tables never
    invent ties.
    """
    ranked = rank_heuristics(columns, metric=metric)
    if not aggregates:
        return [[name] for name in ranked]

    def ties(a: str, b: str) -> bool:
        if columns[a].get("completed tasks") != columns[b].get("completed tasks"):
            return False
        agg_a = aggregates.get(a, {}).get(metric)
        agg_b = aggregates.get(b, {}).get(metric)
        if agg_a is None or agg_b is None:
            return False
        band_a = _metric_interval(agg_a)
        band_b = _metric_interval(agg_b)
        if band_a is None or band_b is None:
            return False
        return band_a[0] <= band_b[1] and band_b[0] <= band_a[1]

    groups: List[List[str]] = []
    for name in ranked:
        if groups and ties(groups[-1][-1], name):
            groups[-1].append(name)
        else:
            groups.append([name])
    return groups


def cross_scenario_ranking(
    scenario_columns: Mapping[str, Mapping[str, Mapping[str, float]]],
    metric: str = "sumflow",
    scenario_aggregates: Optional[Mapping[str, Mapping]] = None,
) -> Dict[str, Dict[str, str]]:
    """Build the cross-scenario summary table ranking heuristics per regime.

    ``scenario_columns`` maps scenario name → ``TableResult.columns``.  The
    result maps heuristic → {scenario: ``"#rank (value)"``} — ready for
    :func:`repro.metrics.report.render_table` with scenarios as rows — ranked
    by :func:`rank_heuristics` per scenario (see its docstring for the
    deterministic ordering contract, including the final name tie-break).
    Row order is first-seen order across the scenarios' columns, so for a
    fixed ``scenario_columns`` input the summary table is reproduced byte
    for byte.  Scenarios missing a heuristic get a ``"-"`` cell rather than
    an error, so sweeps over scenarios with different heuristic sets still
    render.

    ``scenario_aggregates`` (scenario name → ``TableResult.aggregates``)
    switches on significance-aware ties: heuristics whose CIs overlap (see
    :func:`rank_heuristic_groups`) share a competition rank and the cell is
    marked ``#r=`` — ``#2= (sumflow 104.1)`` reads "tied for 2nd".  Without
    it the cells are exactly the strict-ranking cells of earlier versions.
    """
    heuristics: List[str] = []
    for columns in scenario_columns.values():
        for name in columns:
            if name not in heuristics:
                heuristics.append(name)

    table: Dict[str, Dict[str, str]] = {name: {} for name in heuristics}
    for scenario, columns in scenario_columns.items():
        aggregates = (scenario_aggregates or {}).get(scenario)
        groups = rank_heuristic_groups(columns, metric=metric, aggregates=aggregates)
        positions: Dict[str, Tuple[int, bool]] = {}
        rank = 1
        for group in groups:
            for name in group:
                positions[name] = (rank, len(group) > 1)
            rank += len(group)
        for name in heuristics:
            if name in columns:
                value = format_value(columns[name].get(metric))
                rank, tied = positions[name]
                marker = "=" if tied else ""
                table[name][scenario] = f"#{rank}{marker} ({metric} {value})"
            else:
                table[name][scenario] = "-"
    return table
