"""Aggregation of metrics across repeated runs.

Tables 7 and 8 of the paper report, for each of three metatasks, the mean of
several executions per heuristic (plus the per-metatask values).  This module
provides the small statistics needed: mean, standard deviation, and a
Student-t confidence interval whose multiplier honours the actual sample
size (at n=5 the 95% multiplier is 2.776, not the normal approximation's
1.96 — a z interval would understate the width by ~40%).

An *empty* aggregate (no values) is explicit: ``n == 0`` and NaN statistics,
so it can never be mistaken for a real measurement of 0.0; reports render it
as ``-``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from ..stats.student import two_sided_t
from .flow import MetricSummary

__all__ = ["Aggregate", "aggregate_values", "aggregate_summaries"]


def _json_safe(value: float) -> Optional[float]:
    """Round for display; NaN becomes ``None`` (JSON has no NaN literal)."""
    if math.isnan(value):
        return None
    return round(value, 3)


@dataclass(frozen=True)
class Aggregate:
    """Mean / spread of one scalar metric across runs.

    ``n == 0`` marks an *empty* aggregate: every statistic is NaN and
    :attr:`is_empty` is true.  NaN (unlike the all-zeros sentinel this
    replaced) propagates through arithmetic and compares unequal to
    everything, so an absent measurement can never silently masquerade as a
    measured 0.0.
    """

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def is_empty(self) -> bool:
        """Whether the aggregate was computed over zero values."""
        return self.n == 0

    @property
    def half_ci95(self) -> float:
        """Half-width of a 95% Student-t confidence interval (t at n−1 dof).

        NaN when empty, 0.0 for a single value (no spread estimate exists,
        and callers historically rely on the 0.0 — use
        :func:`repro.stats.t_interval` for the strict variant that refuses
        n < 2).
        """
        if self.is_empty:
            return math.nan
        if self.n == 1:
            return 0.0
        return two_sided_t(0.95, self.n - 1) * self.std / math.sqrt(self.n)

    def as_dict(self) -> Dict[str, Optional[float]]:
        """Plain dictionary view (JSON-safe: NaN statistics become None)."""
        return {
            "n": self.n,
            "mean": _json_safe(self.mean),
            "std": _json_safe(self.std),
            "min": _json_safe(self.minimum),
            "max": _json_safe(self.maximum),
            "ci95": _json_safe(self.half_ci95),
        }


def aggregate_values(values: Iterable[float]) -> Aggregate:
    """Aggregate a sequence of scalar values.

    An empty sequence yields the explicit empty aggregate (``n=0``, NaN
    statistics) — see :class:`Aggregate`.
    """
    data = [float(v) for v in values]
    if not data:
        return Aggregate(
            n=0, mean=math.nan, std=math.nan, minimum=math.nan, maximum=math.nan
        )
    n = len(data)
    mean = sum(data) / n
    variance = sum((v - mean) ** 2 for v in data) / (n - 1) if n > 1 else 0.0
    return Aggregate(n=n, mean=mean, std=math.sqrt(variance), minimum=min(data), maximum=max(data))


def aggregate_summaries(summaries: Sequence[MetricSummary]) -> Dict[str, Aggregate]:
    """Aggregate each metric of a list of per-run summaries.

    Returns a mapping metric name → :class:`Aggregate` for the numeric fields
    of :class:`~repro.metrics.flow.MetricSummary`.
    """
    if not summaries:
        return {}
    numeric_fields = (
        "n_completed",
        "makespan",
        "sum_flow",
        "max_flow",
        "max_stretch",
        "mean_flow",
        "mean_stretch",
    )
    return {
        name: aggregate_values(getattr(s, name) for s in summaries) for name in numeric_fields
    }
