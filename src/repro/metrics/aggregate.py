"""Aggregation of metrics across repeated runs.

Tables 7 and 8 of the paper report, for each of three metatasks, the mean of
several executions per heuristic (plus the per-metatask values).  This module
provides the small statistics needed: mean, standard deviation, and a normal
approximation confidence interval — enough for the reproduction reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

from .flow import MetricSummary

__all__ = ["Aggregate", "aggregate_values", "aggregate_summaries"]


@dataclass(frozen=True)
class Aggregate:
    """Mean / spread of one scalar metric across runs."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def half_ci95(self) -> float:
        """Half-width of a 95% normal-approximation confidence interval."""
        if self.n <= 1:
            return 0.0
        return 1.96 * self.std / math.sqrt(self.n)

    def as_dict(self) -> Dict[str, float]:
        """Plain dictionary view."""
        return {
            "n": self.n,
            "mean": round(self.mean, 3),
            "std": round(self.std, 3),
            "min": round(self.minimum, 3),
            "max": round(self.maximum, 3),
            "ci95": round(self.half_ci95, 3),
        }


def aggregate_values(values: Iterable[float]) -> Aggregate:
    """Aggregate a sequence of scalar values."""
    data = [float(v) for v in values]
    if not data:
        return Aggregate(n=0, mean=0.0, std=0.0, minimum=0.0, maximum=0.0)
    n = len(data)
    mean = sum(data) / n
    variance = sum((v - mean) ** 2 for v in data) / (n - 1) if n > 1 else 0.0
    return Aggregate(n=n, mean=mean, std=math.sqrt(variance), minimum=min(data), maximum=max(data))


def aggregate_summaries(summaries: Sequence[MetricSummary]) -> Dict[str, Aggregate]:
    """Aggregate each metric of a list of per-run summaries.

    Returns a mapping metric name → :class:`Aggregate` for the numeric fields
    of :class:`~repro.metrics.flow.MetricSummary`.
    """
    if not summaries:
        return {}
    numeric_fields = (
        "n_completed",
        "makespan",
        "sum_flow",
        "max_flow",
        "max_stretch",
        "mean_flow",
        "mean_stretch",
    )
    return {
        name: aggregate_values(getattr(s, name) for s in summaries) for name in numeric_fields
    }
