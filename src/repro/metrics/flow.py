"""The metrics of Section 3: makespan, sum-flow, max-flow, max-stretch.

All metrics operate on collections of :class:`~repro.workload.tasks.Task`
objects; only *completed* tasks contribute (the paper's Table 6 reports the
metrics over the tasks each heuristic managed to complete, alongside the
count of completed tasks).

Definitions (with ``a_i`` the arrival date, ``C_i`` the completion date and
``rho_i`` the duration of the task alone on the server it actually ran on):

* makespan       ``max_i C_i``
* sum-flow       ``sum_i (C_i - a_i)``
* max-flow       ``max_i (C_i - a_i)``
* max-stretch    ``max_i (C_i - a_i) / rho_i``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..workload.tasks import Task

__all__ = [
    "makespan",
    "sum_flow",
    "max_flow",
    "mean_flow",
    "stretches",
    "max_stretch",
    "mean_stretch",
    "MetricSummary",
    "summarize",
]


def _completed(tasks: Iterable[Task]) -> List[Task]:
    return [task for task in tasks if task.completed]


def makespan(tasks: Iterable[Task]) -> float:
    """Completion time of the last finished task (0 when nothing completed)."""
    completed = _completed(tasks)
    return max((t.completion_time for t in completed), default=0.0)


def sum_flow(tasks: Iterable[Task]) -> float:
    """Total time the completed tasks spent in the system."""
    return float(sum(t.flow for t in _completed(tasks)))


def max_flow(tasks: Iterable[Task]) -> float:
    """Maximum time a completed task spent in the system."""
    completed = _completed(tasks)
    return max((t.flow for t in completed), default=0.0)


def mean_flow(tasks: Iterable[Task]) -> float:
    """Mean flow of the completed tasks (0 when nothing completed)."""
    completed = _completed(tasks)
    if not completed:
        return 0.0
    return sum_flow(completed) / len(completed)


def stretches(tasks: Iterable[Task]) -> Dict[str, float]:
    """Per-task stretch (slowdown w.r.t. the same but unloaded server)."""
    return {t.task_id: t.stretch for t in _completed(tasks)}


def max_stretch(tasks: Iterable[Task]) -> float:
    """Worst slowdown factor among the completed tasks."""
    values = stretches(tasks).values()
    return max(values, default=0.0)


def mean_stretch(tasks: Iterable[Task]) -> float:
    """Mean slowdown factor among the completed tasks."""
    values = list(stretches(tasks).values())
    return float(sum(values) / len(values)) if values else 0.0


@dataclass(frozen=True)
class MetricSummary:
    """All Section 3 metrics of one run, plus completion counts."""

    heuristic: str
    n_tasks: int
    n_completed: int
    makespan: float
    sum_flow: float
    max_flow: float
    max_stretch: float
    mean_flow: float
    mean_stretch: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dictionary view (used by reports and EXPERIMENTS.md)."""
        return {
            "heuristic": self.heuristic,
            "n_tasks": self.n_tasks,
            "n_completed": self.n_completed,
            "makespan": round(self.makespan, 2),
            "sum_flow": round(self.sum_flow, 2),
            "max_flow": round(self.max_flow, 2),
            "max_stretch": round(self.max_stretch, 3),
            "mean_flow": round(self.mean_flow, 2),
            "mean_stretch": round(self.mean_stretch, 3),
        }


def summarize(tasks: Sequence[Task], heuristic: str = "") -> MetricSummary:
    """Compute every Section 3 metric for one run."""
    tasks = list(tasks)
    completed = _completed(tasks)
    return MetricSummary(
        heuristic=heuristic,
        n_tasks=len(tasks),
        n_completed=len(completed),
        makespan=makespan(completed),
        sum_flow=sum_flow(completed),
        max_flow=max_flow(completed),
        max_stretch=max_stretch(completed),
        mean_flow=mean_flow(completed),
        mean_stretch=mean_stretch(completed),
    )
