"""Rendering of result tables.

The experiment harness produces, for every reproduced table of the paper, a
mapping heuristic → metrics.  This module renders those mappings as aligned
plain-text tables (mirroring the layout of Tables 5–8: one column per
heuristic, one row per metric) and as Markdown for EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = ["render_table", "render_markdown_table", "format_value", "format_mean_ci"]

Number = Union[int, float, str, None]

#: Tolerance of the near-integer detection.  One threshold for *every*
#: magnitude: the old code only collapsed near-integers at |v| >= 100, so
#: 99.9999999 rendered as "100.00" while 100.0 rendered as "100" — the same
#: metric could flip representation between runs at the boundary.
_INTEGRAL_EPS = 1e-9


def format_value(value: Number) -> str:
    """Format one cell: integers stay integers, floats get a sensible precision.

    ``None`` and NaN (the empty-aggregate statistics) render as ``-``; a
    float within :data:`_INTEGRAL_EPS` of an integer renders as that integer
    whatever its magnitude.
    """
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return str(value)
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "-"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if abs(value - round(value)) < _INTEGRAL_EPS:
        return str(int(round(value)))
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def format_mean_ci(mean: Number, half_width: Optional[float]) -> str:
    """Format ``mean ± half-width`` for a table cell.

    Falls back to the bare mean when no interval applies: ``half_width`` of
    ``None`` or NaN (unknowable — a single repetition or an empty
    aggregate), or exactly 0.0 (no spread, the ± would be noise).
    """
    mean_text = format_value(mean)
    if half_width is None or (isinstance(half_width, float) and math.isnan(half_width)):
        return mean_text
    if half_width == 0.0:
        return mean_text
    return f"{mean_text} ± {format_value(half_width)}"


def _column_order(columns: Mapping[str, Mapping[str, Number]], order: Optional[Sequence[str]]) -> List[str]:
    if order is None:
        return list(columns)
    missing = [name for name in order if name in columns]
    extra = [name for name in columns if name not in missing]
    return missing + extra


def _row_order(columns: Mapping[str, Mapping[str, Number]], rows: Optional[Sequence[str]]) -> List[str]:
    if rows is not None:
        return list(rows)
    seen: List[str] = []
    for column in columns.values():
        for key in column:
            if key not in seen:
                seen.append(key)
    return seen


def render_table(
    columns: Mapping[str, Mapping[str, Number]],
    title: str = "",
    column_order: Optional[Sequence[str]] = None,
    row_order: Optional[Sequence[str]] = None,
    notes: Optional[Sequence[str]] = None,
) -> str:
    """Render ``columns`` (heuristic → {metric: value}) as an aligned text table.

    ``notes`` lines, when given, are appended after the table as
    ``note: ...`` lines — this is the *only* place that formats table notes
    (``TableResult.render`` and the sweep renderer both delegate here).
    """
    col_names = _column_order(columns, column_order)
    row_names = _row_order(columns, row_order)
    label_width = max([len(r) for r in row_names] + [10])
    cell_widths = [
        len(format_value(columns[col].get(row)))
        for col in col_names
        for row in row_names
    ]
    col_width = max([len(c) for c in col_names] + [12] + cell_widths) + 2

    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * label_width + "".join(f"{name:>{col_width}}" for name in col_names)
    lines.append(header)
    lines.append("-" * len(header))
    for row in row_names:
        cells = []
        for col in col_names:
            cells.append(format_value(columns[col].get(row)))
        lines.append(f"{row:<{label_width}}" + "".join(f"{cell:>{col_width}}" for cell in cells))
    for note in notes or ():
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_markdown_table(
    columns: Mapping[str, Mapping[str, Number]],
    column_order: Optional[Sequence[str]] = None,
    row_order: Optional[Sequence[str]] = None,
    notes: Optional[Sequence[str]] = None,
) -> str:
    """Render ``columns`` as a GitHub-flavoured Markdown table.

    ``notes`` lines are appended after the table as emphasised lines.
    """
    col_names = _column_order(columns, column_order)
    row_names = _row_order(columns, row_order)
    lines = ["| metric | " + " | ".join(col_names) + " |"]
    lines.append("|---" * (len(col_names) + 1) + "|")
    for row in row_names:
        cells = [format_value(columns[col].get(row)) for col in col_names]
        lines.append(f"| {row} | " + " | ".join(cells) + " |")
    if notes:
        lines.append("")
        lines.extend(f"*note: {note}*  " for note in notes)
    return "\n".join(lines)
