"""Rendering of result tables.

The experiment harness produces, for every reproduced table of the paper, a
mapping heuristic → metrics.  This module renders those mappings as aligned
plain-text tables (mirroring the layout of Tables 5–8: one column per
heuristic, one row per metric) and as Markdown for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = ["render_table", "render_markdown_table", "format_value"]

Number = Union[int, float, str, None]


def format_value(value: Number) -> str:
    """Format one cell: integers stay integers, floats get a sensible precision."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, int):
        return str(value)
    if abs(value - round(value)) < 1e-9 and abs(value) >= 100:
        return str(int(round(value)))
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def _column_order(columns: Mapping[str, Mapping[str, Number]], order: Optional[Sequence[str]]) -> List[str]:
    if order is None:
        return list(columns)
    missing = [name for name in order if name in columns]
    extra = [name for name in columns if name not in missing]
    return missing + extra


def _row_order(columns: Mapping[str, Mapping[str, Number]], rows: Optional[Sequence[str]]) -> List[str]:
    if rows is not None:
        return list(rows)
    seen: List[str] = []
    for column in columns.values():
        for key in column:
            if key not in seen:
                seen.append(key)
    return seen


def render_table(
    columns: Mapping[str, Mapping[str, Number]],
    title: str = "",
    column_order: Optional[Sequence[str]] = None,
    row_order: Optional[Sequence[str]] = None,
    notes: Optional[Sequence[str]] = None,
) -> str:
    """Render ``columns`` (heuristic → {metric: value}) as an aligned text table.

    ``notes`` lines, when given, are appended after the table as
    ``note: ...`` lines — this is the *only* place that formats table notes
    (``TableResult.render`` and the sweep renderer both delegate here).
    """
    col_names = _column_order(columns, column_order)
    row_names = _row_order(columns, row_order)
    label_width = max([len(r) for r in row_names] + [10])
    cell_widths = [
        len(format_value(columns[col].get(row)))
        for col in col_names
        for row in row_names
    ]
    col_width = max([len(c) for c in col_names] + [12] + cell_widths) + 2

    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * label_width + "".join(f"{name:>{col_width}}" for name in col_names)
    lines.append(header)
    lines.append("-" * len(header))
    for row in row_names:
        cells = []
        for col in col_names:
            cells.append(format_value(columns[col].get(row)))
        lines.append(f"{row:<{label_width}}" + "".join(f"{cell:>{col_width}}" for cell in cells))
    for note in notes or ():
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_markdown_table(
    columns: Mapping[str, Mapping[str, Number]],
    column_order: Optional[Sequence[str]] = None,
    row_order: Optional[Sequence[str]] = None,
    notes: Optional[Sequence[str]] = None,
) -> str:
    """Render ``columns`` as a GitHub-flavoured Markdown table.

    ``notes`` lines are appended after the table as emphasised lines.
    """
    col_names = _column_order(columns, column_order)
    row_names = _row_order(columns, row_order)
    lines = ["| metric | " + " | ".join(col_names) + " |"]
    lines.append("|---" * (len(col_names) + 1) + "|")
    for row in row_names:
        cells = [format_value(columns[col].get(row)) for col in col_names]
        lines.append(f"| {row} | " + " | ".join(cells) + " |")
    if notes:
        lines.append("")
        lines.extend(f"*note: {note}*  " for note in notes)
    return "\n".join(lines)
