"""Base classes of the scheduling heuristics.

A heuristic sees exactly what the agent sees: the static description of the
incoming task, per-server static costs, the latest monitor reports (for the
load-based baseline) and, for the paper's heuristics, the Historical Trace
Manager.  It returns a :class:`Decision` naming the chosen server.

The ground-truth state of the platform is *never* available to a heuristic —
that separation is the whole point of the paper's comparison between MCT
(stale load reports) and the HTM-based heuristics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ...errors import NoCandidateServer, SchedulingError
from ...workload.problems import PhaseCosts
from ...workload.tasks import Task
from ..htm import HistoricalTraceManager
from ..records import HtmPrediction

__all__ = ["ServerInfo", "SchedulingContext", "Decision", "Heuristic", "HtmHeuristic"]


@dataclass(frozen=True)
class ServerInfo:
    """What the agent knows about one candidate server when scheduling a task.

    Attributes
    ----------
    name:
        Server name.
    costs:
        Unloaded costs of the incoming task's problem on this server (static
        information of Section 2.2).
    reported_load:
        Load carried by the most recent monitor report (smoothed number of
        tasks in the compute phase).  ``0`` if no report was received yet.
    report_age:
        Seconds elapsed since that report (staleness).
    pending_correction:
        NetSolve's first load-correction mechanism: number of tasks the agent
        mapped on the server since the last report, minus the completions it
        was notified of.
    is_up:
        Whether the agent currently believes the server is alive.
    speed_hint:
        Abstract speed (MFlop/s) used only for display/tie-breaking.
    cpu_count:
        Number of processors of the server (static information from the
        registration); MCT's availability estimate accounts for it.
    """

    name: str
    costs: PhaseCosts
    reported_load: float = 0.0
    report_age: float = 0.0
    pending_correction: int = 0
    is_up: bool = True
    speed_hint: float = 1.0
    cpu_count: int = 1

    @property
    def corrected_load(self) -> float:
        """Reported load plus the pending correction (never negative)."""
        return max(0.0, self.reported_load + self.pending_correction)


@dataclass
class SchedulingContext:
    """Everything a heuristic may look at to map one task."""

    now: float
    task: Task
    servers: Tuple[ServerInfo, ...]
    htm: Optional[HistoricalTraceManager] = None
    #: Optional cache filled by HTM heuristics so the agent can reuse the
    #: winning prediction when committing (avoids a second simulation).
    predictions: Dict[str, HtmPrediction] = field(default_factory=dict)

    def candidate_servers(self) -> Tuple[ServerInfo, ...]:
        """Servers that are up (the agent never selects a collapsed server)."""
        return tuple(info for info in self.servers if info.is_up)

    def server(self, name: str) -> ServerInfo:
        """The :class:`ServerInfo` called ``name``."""
        for info in self.servers:
            if info.name == name:
                return info
        raise SchedulingError(f"server {name!r} is not a candidate for this task")


@dataclass(frozen=True)
class Decision:
    """The outcome of a scheduling decision."""

    server: str
    #: Estimated completion date of the task on the chosen server, as computed
    #: by the heuristic (load-based estimate for MCT, HTM prediction for the
    #: others).  Purely informational.
    estimated_completion: Optional[float] = None
    #: Heuristic-specific scores per candidate server (for tracing/analysis).
    scores: Mapping[str, float] = field(default_factory=dict)


class Heuristic(abc.ABC):
    """Base class of every scheduling heuristic."""

    #: Short identifier used by the registry, reports and the CLI.
    name: str = "heuristic"
    #: Whether the heuristic needs the Historical Trace Manager.
    requires_htm: bool = False

    @abc.abstractmethod
    def select(self, context: SchedulingContext) -> Decision:
        """Choose a server for ``context.task`` among ``context.servers``."""

    # ------------------------------------------------------------------ #
    def _require_candidates(self, context: SchedulingContext) -> Tuple[ServerInfo, ...]:
        candidates = context.candidate_servers()
        if not candidates:
            raise NoCandidateServer(context.task.problem.name)
        return candidates

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


class HtmHeuristic(Heuristic):
    """Base class of the heuristics that rely on the Historical Trace Manager."""

    requires_htm = True

    def _predictions(self, context: SchedulingContext) -> Dict[str, HtmPrediction]:
        """Ask the HTM for a prediction on every live candidate server."""
        if context.htm is None:
            raise SchedulingError(
                f"heuristic {self.name!r} needs the Historical Trace Manager"
            )
        candidates = self._require_candidates(context)
        predictions = {
            info.name: context.htm.predict(info.name, context.task, context.now)
            for info in candidates
        }
        context.predictions.update(predictions)
        return predictions
