"""MSF — Minimum Sum Flow (Fig. 4 of the paper, equivalent to Weissman's MTI).

MSF "is a willing attempt to mix the advantages of HMCT and MP": it selects
the server minimising the *system sum-flow* after the mapping.  Since, for a
given candidate server, the sum-flow only changes by the perturbations
inflicted on that server's tasks plus the flow of the new task itself, the
heuristic only needs to compute

    score(s) = sum_j perturbation_j(s) + (predicted completion on s − now)

and pick the smallest.  The paper finds that MSF "always outperforms MCT"
and gives the best or near-best value of every observed metric.

An optional memory-aware variant (the paper's first future-work item) skips
candidate servers whose predicted resident memory would exceed memory + swap.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...errors import NoCandidateServer
from .base import Decision, HtmHeuristic, SchedulingContext, ServerInfo

__all__ = ["MsfHeuristic"]


class MsfHeuristic(HtmHeuristic):
    """Minimum Sum Flow (a.k.a. Minimum Total Interference)."""

    name = "msf"

    def __init__(self, memory_aware: bool = False, memory_limits: Optional[Dict[str, float]] = None):
        #: When ``True``, servers whose resident memory would overflow are
        #: avoided whenever another candidate exists (future-work extension).
        self.memory_aware = memory_aware
        #: Mapping server name → memory + swap available to tasks (MB);
        #: required when ``memory_aware`` is enabled.
        self.memory_limits = dict(memory_limits or {})
        #: Running account of the memory the heuristic believes is resident on
        #: each server (updated through ``notify_*`` callbacks by the agent).
        self._resident_mb: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # memory bookkeeping used by the memory-aware variant
    # ------------------------------------------------------------------ #
    def notify_commit(self, server: str, memory_mb: float) -> None:
        """Record that a task needing ``memory_mb`` was mapped on ``server``."""
        self._resident_mb[server] = self._resident_mb.get(server, 0.0) + memory_mb

    def notify_release(self, server: str, memory_mb: float) -> None:
        """Record that a task needing ``memory_mb`` left ``server``."""
        self._resident_mb[server] = max(0.0, self._resident_mb.get(server, 0.0) - memory_mb)

    def _memory_ok(self, info: ServerInfo, memory_mb: float) -> bool:
        if not self.memory_aware:
            return True
        limit = self.memory_limits.get(info.name)
        if limit is None:
            return True
        return self._resident_mb.get(info.name, 0.0) + memory_mb <= limit

    # ------------------------------------------------------------------ #
    def select(self, context: SchedulingContext) -> Decision:
        predictions = self._predictions(context)
        scores: Dict[str, float] = {
            name: prediction.sum_flow_increase for name, prediction in predictions.items()
        }
        memory_mb = context.task.problem.memory_mb

        def pick(candidates) -> Optional[str]:
            best_name = None
            best_score = float("inf")
            best_completion = float("inf")
            for info in candidates:
                prediction = predictions[info.name]
                score = prediction.sum_flow_increase
                completion = prediction.new_task_completion
                if score < best_score - 1e-9 or (
                    abs(score - best_score) <= 1e-9 and completion < best_completion - 1e-12
                ):
                    best_score = score
                    best_completion = completion
                    best_name = info.name
            return best_name

        candidates = context.candidate_servers()
        fitting = [info for info in candidates if self._memory_ok(info, memory_mb)]
        best_name = pick(fitting) if fitting else None
        if best_name is None:
            # Either memory awareness filtered everything out or it is off:
            # fall back to the plain MSF choice among all live candidates.
            best_name = pick(candidates)
        if best_name is None:
            # Zero live candidates (or no candidate with a finite score):
            # raise like the rest of the stack instead of dying on an assert —
            # which would silently pass under ``python -O``.
            raise NoCandidateServer(context.task.problem.name)
        return Decision(
            server=best_name,
            estimated_completion=predictions[best_name].new_task_completion,
            scores=scores,
        )
