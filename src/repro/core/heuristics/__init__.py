"""Scheduling heuristics of the client-agent-server agent.

The four heuristics compared in the paper's experiments are:

* :class:`MctHeuristic` (``"mct"``) — NetSolve's baseline, driven by monitor
  load reports;
* :class:`HmctHeuristic` (``"hmct"``) — MCT driven by the Historical Trace
  Manager (Fig. 2);
* :class:`MpHeuristic` (``"mp"``) — Minimum Perturbation (Fig. 3);
* :class:`MsfHeuristic` (``"msf"``) — Minimum Sum Flow (Fig. 4).

Extensions and baselines: :class:`MniHeuristic` (Weissman's MNI),
:class:`RandomHeuristic`, :class:`RoundRobinHeuristic`,
:class:`MinLoadHeuristic`, :class:`FastestServerHeuristic`.

Use :func:`create_heuristic` (or :data:`HEURISTIC_REGISTRY`) to instantiate a
heuristic from its short name.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ...errors import SchedulingError
from .base import Decision, Heuristic, HtmHeuristic, SchedulingContext, ServerInfo
from .extras import (
    FastestServerHeuristic,
    MinLoadHeuristic,
    RandomHeuristic,
    RoundRobinHeuristic,
)
from .hmct import HmctHeuristic
from .mct import MctHeuristic
from .mni import MniHeuristic
from .mp import MpHeuristic
from .msf import MsfHeuristic

__all__ = [
    "Decision",
    "Heuristic",
    "HtmHeuristic",
    "SchedulingContext",
    "ServerInfo",
    "MctHeuristic",
    "HmctHeuristic",
    "MpHeuristic",
    "MsfHeuristic",
    "MniHeuristic",
    "RandomHeuristic",
    "RoundRobinHeuristic",
    "MinLoadHeuristic",
    "FastestServerHeuristic",
    "HEURISTIC_REGISTRY",
    "PAPER_HEURISTICS",
    "create_heuristic",
    "available_heuristics",
]

#: Factories of every available heuristic, keyed by short name.
HEURISTIC_REGISTRY: Dict[str, Callable[[], Heuristic]] = {
    MctHeuristic.name: MctHeuristic,
    HmctHeuristic.name: HmctHeuristic,
    MpHeuristic.name: MpHeuristic,
    MsfHeuristic.name: MsfHeuristic,
    MniHeuristic.name: MniHeuristic,
    RandomHeuristic.name: RandomHeuristic,
    RoundRobinHeuristic.name: RoundRobinHeuristic,
    MinLoadHeuristic.name: MinLoadHeuristic,
    FastestServerHeuristic.name: FastestServerHeuristic,
}

#: The four heuristics compared in the paper's tables, in the paper's order.
PAPER_HEURISTICS = ("mct", "hmct", "mp", "msf")


def create_heuristic(name: str, **kwargs) -> Heuristic:
    """Instantiate the heuristic registered under ``name``.

    Keyword arguments are forwarded to the heuristic constructor (e.g.
    ``create_heuristic("msf", memory_aware=True, memory_limits=...)``).
    """
    try:
        factory = HEURISTIC_REGISTRY[name]
    except KeyError:
        raise SchedulingError(
            f"unknown heuristic {name!r}; available: {sorted(HEURISTIC_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_heuristics() -> List[str]:
    """Short names of every registered heuristic."""
    return sorted(HEURISTIC_REGISTRY)
