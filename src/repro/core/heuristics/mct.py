"""The baseline: NetSolve's Minimum Completion Time (MCT).

MCT "tries to map each task to the resource that finishes that task the
soonest" (Section 1) using the information model of Section 2.2:

* communication time = size of the data / bandwidth + latency — here the
  measured unloaded transfer costs of the problem (Tables 3 and 4);
* computation time = task cost / fraction of currently available CPU speed,
  where the availability derives from the load reported by the server's
  monitor.

The paper also describes NetSolve's two *load-correction mechanisms*
(Section 5.3): the agent bumps its view of a server's load when it assigns a
task to it before the next report arrives, and servers send a message when a
task finishes.  Both are modelled through
:attr:`~repro.core.heuristics.base.ServerInfo.pending_correction`.

MCT's flaw — the motivation of the whole paper — is that it assumes the load
it sees is *constant*: it ignores the remaining durations of the running
tasks and the perturbation the new task inflicts on them.
"""

from __future__ import annotations

from typing import Dict

from ...errors import NoCandidateServer
from .base import Decision, Heuristic, SchedulingContext, ServerInfo

__all__ = ["MctHeuristic"]


class MctHeuristic(Heuristic):
    """NetSolve's load-report-driven Minimum Completion Time."""

    name = "mct"
    requires_htm = False

    def __init__(self, use_load_correction: bool = True):
        #: Whether the two NetSolve load-correction mechanisms are applied.
        #: Disabling them is an ablation showing the herd effect get worse.
        self.use_load_correction = use_load_correction

    def estimate_completion(self, info: ServerInfo, now: float) -> float:
        """MCT's estimate of the completion date of the task on ``info``.

        The server is assumed to keep its current load for the whole duration
        of the task; the new task gets ``min(1, cpus / (load + 1))`` of a CPU.
        """
        load = info.corrected_load if self.use_load_correction else info.reported_load
        available_fraction = min(1.0, info.cpu_count / (1.0 + max(0.0, load)))
        communication = info.costs.input_s + info.costs.output_s
        computation = info.costs.compute_s / available_fraction
        return now + communication + computation

    def select(self, context: SchedulingContext) -> Decision:
        candidates = self._require_candidates(context)
        scores: Dict[str, float] = {}
        best_name = None
        best_estimate = float("inf")
        for info in candidates:
            estimate = self.estimate_completion(info, context.now)
            scores[info.name] = estimate
            if estimate < best_estimate - 1e-12:
                best_estimate = estimate
                best_name = info.name
        if best_name is None:
            # No candidate produced a finite estimate: raise like the rest of
            # the stack (a bare assert would vanish under ``python -O``).
            raise NoCandidateServer(context.task.problem.name)
        return Decision(server=best_name, estimated_completion=best_estimate, scores=scores)
