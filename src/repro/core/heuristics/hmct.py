"""HMCT — Historical Minimum Completion Time (Fig. 2 of the paper).

HMCT is "the Minimum Completion Time algorithm relying on the HTM": when a
new task arrives the HTM simulates its mapping on each candidate server until
completion, and the agent picks the server minimising the predicted finishing
date.  The objective is the same as MCT's (minimise the completion date of
the incoming task, hence the makespan), but the estimate is accurate because
the HTM accounts for the remaining work of the already-mapped tasks and for
their future departures.

Its documented drawback is that it "tends to overload the fastest servers",
delaying already-mapped tasks and — in the first experiment set — exhausting
their memory.
"""

from __future__ import annotations

from typing import Dict

from ...errors import NoCandidateServer
from .base import Decision, HtmHeuristic, SchedulingContext

__all__ = ["HmctHeuristic"]


class HmctHeuristic(HtmHeuristic):
    """Minimum Completion Time driven by the Historical Trace Manager."""

    name = "hmct"

    def select(self, context: SchedulingContext) -> Decision:
        predictions = self._predictions(context)
        scores: Dict[str, float] = {
            name: prediction.new_task_completion for name, prediction in predictions.items()
        }
        best_name = None
        best_completion = float("inf")
        for info in context.candidate_servers():
            completion = scores[info.name]
            if completion < best_completion - 1e-12:
                best_completion = completion
                best_name = info.name
        if best_name is None:
            # No candidate produced a finite prediction: raise like the rest
            # of the stack (a bare assert would vanish under ``python -O``).
            raise NoCandidateServer(context.task.problem.name)
        return Decision(server=best_name, estimated_completion=best_completion, scores=scores)
