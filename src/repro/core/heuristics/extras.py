"""Extra baseline heuristics (not from the paper).

These simple policies are useful as sanity baselines in tests, examples and
ablation benchmarks: if a proposed heuristic does not clearly beat random or
round-robin mapping on the observed metrics, something is wrong with the
experiment.  They only use the information the agent has (static costs and
monitor reports), never the ground truth.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .base import Decision, Heuristic, SchedulingContext

__all__ = ["RandomHeuristic", "RoundRobinHeuristic", "MinLoadHeuristic", "FastestServerHeuristic"]


class RandomHeuristic(Heuristic):
    """Map every task to a uniformly random live candidate server."""

    name = "random"

    def __init__(self, rng: Optional[np.random.Generator] = None):
        # repro: allow[DET-RNG] interactive convenience fallback only — every
        # campaign/experiment path passes a generator seeded from the root seed
        self._rng = rng if rng is not None else np.random.default_rng()

    def select(self, context: SchedulingContext) -> Decision:
        candidates = self._require_candidates(context)
        index = int(self._rng.integers(0, len(candidates)))
        chosen = candidates[index]
        return Decision(server=chosen.name, scores={c.name: 1.0 for c in candidates})


class RoundRobinHeuristic(Heuristic):
    """Cycle through the live candidate servers in name order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._counter = 0

    def select(self, context: SchedulingContext) -> Decision:
        candidates = sorted(self._require_candidates(context), key=lambda c: c.name)
        chosen = candidates[self._counter % len(candidates)]
        self._counter += 1
        return Decision(server=chosen.name)


class MinLoadHeuristic(Heuristic):
    """Map each task to the candidate with the lowest (corrected) reported load."""

    name = "min-load"

    def select(self, context: SchedulingContext) -> Decision:
        candidates = self._require_candidates(context)
        scores: Dict[str, float] = {c.name: c.corrected_load for c in candidates}
        chosen = min(candidates, key=lambda c: (c.corrected_load, c.costs.compute_s, c.name))
        return Decision(server=chosen.name, scores=scores)


class FastestServerHeuristic(Heuristic):
    """Always map to the server with the smallest unloaded cost for the task.

    This is MCT with the load term removed; it exhibits an extreme version of
    the fast-server pile-up the paper blames MCT for, and is used by the
    ablation benchmarks as a worst-case reference.
    """

    name = "fastest"

    def select(self, context: SchedulingContext) -> Decision:
        candidates = self._require_candidates(context)
        scores: Dict[str, float] = {c.name: c.costs.total for c in candidates}
        chosen = min(candidates, key=lambda c: (c.costs.total, c.name))
        return Decision(server=chosen.name, estimated_completion=context.now + chosen.costs.total, scores=scores)
