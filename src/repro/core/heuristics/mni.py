"""MNI — Minimum Number of Interferences (Weissman, related work).

The paper's Section 6 recalls Weissman's interference paradigm [11] and his
two heuristics: MTI (equivalent to MSF, implemented in
:mod:`repro.core.heuristics.msf`) and MNI, which "minimizes the number of
tasks that experience interference".  MNI is implemented here as an extension
so the comparison of the related-work discussion can be reproduced: the
candidate server is the one on which the fewest already-mapped tasks would be
delayed by the new task, ties being broken on the sum of perturbations and
then on the completion date of the new task.
"""

from __future__ import annotations

from typing import Dict

from ...errors import NoCandidateServer
from .base import Decision, HtmHeuristic, SchedulingContext

__all__ = ["MniHeuristic"]


class MniHeuristic(HtmHeuristic):
    """Minimum Number of Interferences (Weissman's MNI)."""

    name = "mni"

    def select(self, context: SchedulingContext) -> Decision:
        predictions = self._predictions(context)
        scores: Dict[str, float] = {
            name: float(prediction.n_perturbed) for name, prediction in predictions.items()
        }
        best_name = None
        best_key = (float("inf"), float("inf"), float("inf"))
        for info in context.candidate_servers():
            prediction = predictions[info.name]
            key = (
                float(prediction.n_perturbed),
                prediction.sum_perturbation,
                prediction.new_task_completion,
            )
            if key < best_key:
                best_key = key
                best_name = info.name
        if best_name is None:
            # No candidate produced a finite prediction: raise like the rest
            # of the stack (a bare assert would vanish under ``python -O``).
            raise NoCandidateServer(context.task.problem.name)
        return Decision(
            server=best_name,
            estimated_completion=predictions[best_name].new_task_completion,
            scores=scores,
        )
