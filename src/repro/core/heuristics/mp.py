"""MP — Minimum Perturbation (Fig. 3 of the paper).

MP maps the new task to the server minimising the *sum of the perturbations*
it inflicts on the already-mapped tasks of that server.  "In the case of
equality, for instance at the beginning, the server that minimizes the
completion date of the last incoming task is chosen."  MP "aims to provide a
better quality of service to each task by delaying as less as possible
already allocated tasks"; its drawback is sub-optimal resource usage — a task
can be sent to a slow but idle server unnecessarily, which is why MP shows
the largest max-flow of Table 5.
"""

from __future__ import annotations

from typing import Dict

from ...errors import NoCandidateServer
from .base import Decision, HtmHeuristic, SchedulingContext

__all__ = ["MpHeuristic"]

#: Two perturbation sums closer than this are considered equal (seconds).
_TIE_EPSILON = 1e-9


class MpHeuristic(HtmHeuristic):
    """Minimum (sum of) Perturbation."""

    name = "mp"

    def select(self, context: SchedulingContext) -> Decision:
        predictions = self._predictions(context)
        scores: Dict[str, float] = {
            name: prediction.sum_perturbation for name, prediction in predictions.items()
        }
        # Minimise the sum of perturbations; break ties — "for instance at the
        # beginning", when every sum is zero — on the predicted completion
        # date of the new task, exactly as in Fig. 3.
        best_name = None
        best_sum = float("inf")
        best_completion = float("inf")
        for info in context.candidate_servers():
            prediction = predictions[info.name]
            sum_pert = prediction.sum_perturbation
            completion = prediction.new_task_completion
            if sum_pert < best_sum - _TIE_EPSILON:
                is_better = True
            elif abs(sum_pert - best_sum) <= _TIE_EPSILON:
                is_better = completion < best_completion - 1e-12
            else:
                is_better = False
            if is_better:
                best_sum = sum_pert
                best_completion = completion
                best_name = info.name
        if best_name is None:
            # No candidate produced a finite prediction: raise like the rest
            # of the stack (a bare assert would vanish under ``python -O``).
            raise NoCandidateServer(context.task.problem.name)
        return Decision(
            server=best_name,
            estimated_completion=best_completion,
            scores=scores,
        )
