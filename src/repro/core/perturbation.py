"""Perturbation analysis helpers.

The *perturbation* of a new task on an already-mapped task *j* is the delay
``pi'_j - pi_j`` that mapping the new task inflicts on *j* (Section 2.4).
The per-candidate values live in :class:`~repro.core.records.HtmPrediction`;
this module adds small helpers to compare candidates side by side, which the
heuristics use for their decisions and the examples use for display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .records import HtmPrediction

__all__ = ["CandidateSummary", "PerturbationReport"]


@dataclass(frozen=True)
class CandidateSummary:
    """Aggregated view of one candidate server for one scheduling decision."""

    server: str
    new_task_completion: float
    predicted_flow: float
    sum_perturbation: float
    n_perturbed: int
    sum_flow_increase: float

    @classmethod
    def from_prediction(cls, prediction: HtmPrediction) -> "CandidateSummary":
        """Build the summary of one HTM prediction."""
        return cls(
            server=prediction.server,
            new_task_completion=prediction.new_task_completion,
            predicted_flow=prediction.predicted_flow,
            sum_perturbation=prediction.sum_perturbation,
            n_perturbed=prediction.n_perturbed,
            sum_flow_increase=prediction.sum_flow_increase,
        )


@dataclass(frozen=True)
class PerturbationReport:
    """Side-by-side comparison of every candidate server for one decision."""

    task_id: str
    now: float
    candidates: Tuple[CandidateSummary, ...]

    @classmethod
    def from_predictions(
        cls, predictions: Mapping[str, HtmPrediction], task_id: str, now: float
    ) -> "PerturbationReport":
        """Build a report from the per-server predictions of the HTM."""
        summaries = tuple(
            CandidateSummary.from_prediction(predictions[name]) for name in sorted(predictions)
        )
        return cls(task_id=task_id, now=now, candidates=summaries)

    def best_by(self, attribute: str) -> CandidateSummary:
        """Candidate minimising ``attribute`` (ties broken by completion date)."""
        if not self.candidates:
            raise ValueError("the report has no candidate")
        return min(
            self.candidates,
            key=lambda c: (getattr(c, attribute), c.new_task_completion, c.server),
        )

    def as_rows(self) -> List[Dict[str, float]]:
        """Rows suitable for tabular display (one per candidate)."""
        return [
            {
                "server": c.server,
                "completion": round(c.new_task_completion, 3),
                "flow": round(c.predicted_flow, 3),
                "sum_perturbation": round(c.sum_perturbation, 3),
                "n_perturbed": c.n_perturbed,
                "sum_flow_increase": round(c.sum_flow_increase, 3),
            }
            for c in self.candidates
        ]

    def render(self) -> str:
        """Human-readable table of the candidates."""
        header = f"{'server':>12} {'completion':>12} {'flow':>10} {'sum pert.':>10} {'#pert':>6} {'ΔsumFlow':>10}"
        lines = [f"candidates for {self.task_id} at t={self.now:.2f}", header]
        for c in self.candidates:
            lines.append(
                f"{c.server:>12} {c.new_task_completion:>12.2f} {c.predicted_flow:>10.2f} "
                f"{c.sum_perturbation:>10.2f} {c.n_perturbed:>6d} {c.sum_flow_increase:>10.2f}"
            )
        return "\n".join(lines)
