"""Gantt charts of server traces.

The HTM "can build or update the Gantt Chart for each server when a new
incoming task is mapped" (Section 2.3, Fig. 1).  This module turns the fluid
task states of a server trace into a :class:`GanttChart`, a plain data
structure that can be inspected programmatically, compared between the
"before" and "after" mapping of a task, and rendered as ASCII art (used by
the Fig. 1 example and the quickstart).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..simulation.fluid import FluidTaskState
from .records import PHASE_NAMES

__all__ = ["GanttPhase", "GanttRow", "GanttChart", "chart_from_states"]


@dataclass(frozen=True)
class GanttPhase:
    """One phase of one task on the chart: ``[start, end)`` on a resource."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Wall-clock duration of the phase (includes time-sharing slowdown)."""
        return self.end - self.start


@dataclass(frozen=True)
class GanttRow:
    """All phases of one task on one server."""

    task_id: str
    arrival: float
    phases: Tuple[GanttPhase, ...]

    @property
    def start(self) -> float:
        """Date the first phase started."""
        return self.phases[0].start if self.phases else self.arrival

    @property
    def end(self) -> Optional[float]:
        """Completion date of the task, or ``None`` if still running."""
        return self.phases[-1].end if self.phases else None

    def phase(self, name: str) -> Optional[GanttPhase]:
        """The phase called ``name``, if present."""
        for ph in self.phases:
            if ph.name == name:
                return ph
        return None


@dataclass(frozen=True)
class GanttChart:
    """Per-server Gantt chart: one row per task, in mapping order."""

    server: str
    rows: Tuple[GanttRow, ...]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def row(self, task_id: str) -> GanttRow:
        """Row of task ``task_id`` (raises ``KeyError`` if absent)."""
        for row in self.rows:
            if row.task_id == task_id:
                return row
        raise KeyError(task_id)

    @property
    def horizon(self) -> float:
        """Latest completion date on the chart (0 when empty)."""
        ends = [row.end for row in self.rows if row.end is not None]
        return max(ends) if ends else 0.0

    def completions(self) -> Dict[str, float]:
        """Mapping task id → completion date for the finished rows."""
        return {row.task_id: row.end for row in self.rows if row.end is not None}

    # ------------------------------------------------------------------ #
    def render(self, width: int = 72, legend: bool = True) -> str:
        """Render the chart as ASCII art.

        Each row shows the three phases with different fill characters
        (``.`` input transfer, ``#`` computation, ``:`` output transfer).
        """
        horizon = self.horizon
        if horizon <= 0:
            return f"[{self.server}] (empty)"
        scale = (width - 1) / horizon
        fills = {"input": ".", "compute": "#", "output": ":"}
        lines = [f"[{self.server}] 0 {'-' * (width - len(str(round(horizon))) - 8)} {horizon:.1f}s"]
        for row in self.rows:
            canvas = [" "] * width
            for phase in row.phases:
                lo = int(round(phase.start * scale))
                hi = max(lo + 1, int(round(phase.end * scale)))
                for i in range(lo, min(hi, width)):
                    canvas[i] = fills.get(phase.name, "#")
            label = f"{row.task_id[-12:]:>12}"
            lines.append(f"{label} |{''.join(canvas)}|")
        if legend:
            lines.append("              legend: '.' input transfer, '#' compute, ':' output transfer")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def chart_from_states(
    server: str,
    states: Iterable[FluidTaskState],
    phase_names: Sequence[str] = PHASE_NAMES,
) -> GanttChart:
    """Build a :class:`GanttChart` from fluid task states.

    Unfinished stages are omitted (the chart shows what has been simulated so
    far); callers wanting the *predicted* full chart should run a copy of the
    network to completion first (the HTM does exactly that).
    """
    rows: List[GanttRow] = []
    for state in sorted(states, key=lambda s: (s.arrival, str(s.key))):
        phases: List[GanttPhase] = []
        previous_end = state.start_time if state.start_time is not None else state.arrival
        for index, finish in enumerate(state.stage_finish_times):
            name = phase_names[index] if index < len(phase_names) else f"stage{index}"
            phases.append(GanttPhase(name=name, start=previous_end, end=finish))
            previous_end = finish
        rows.append(GanttRow(task_id=str(state.key), arrival=state.arrival, phases=tuple(phases)))
    return GanttChart(server=server, rows=tuple(rows))
