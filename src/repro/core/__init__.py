"""The paper's primary contribution: the HTM, the perturbation and the heuristics.

This package contains everything Section 2.3–4 of the paper describes:

* :class:`HistoricalTraceManager` — the in-agent simulation of every mapped
  task (per-server Gantt charts, completion predictions, perturbations);
* :class:`~repro.core.records.HtmPrediction` / :class:`~repro.core.perturbation.PerturbationReport`
  — the what-if results the heuristics reason about;
* the scheduling heuristics (:mod:`repro.core.heuristics`): MCT (baseline),
  HMCT, MP, MSF, plus extensions.
"""

from .gantt import GanttChart, GanttPhase, GanttRow, chart_from_states
from .htm import HistoricalTraceManager, ServerTrace
from .perturbation import CandidateSummary, PerturbationReport
from .records import HtmPrediction, TracedTask
from .heuristics import (
    Decision,
    Heuristic,
    HtmHeuristic,
    SchedulingContext,
    ServerInfo,
    MctHeuristic,
    HmctHeuristic,
    MpHeuristic,
    MsfHeuristic,
    MniHeuristic,
    HEURISTIC_REGISTRY,
    PAPER_HEURISTICS,
    create_heuristic,
    available_heuristics,
)

__all__ = [
    "HistoricalTraceManager",
    "ServerTrace",
    "HtmPrediction",
    "TracedTask",
    "GanttChart",
    "GanttRow",
    "GanttPhase",
    "chart_from_states",
    "CandidateSummary",
    "PerturbationReport",
    "Decision",
    "Heuristic",
    "HtmHeuristic",
    "SchedulingContext",
    "ServerInfo",
    "MctHeuristic",
    "HmctHeuristic",
    "MpHeuristic",
    "MsfHeuristic",
    "MniHeuristic",
    "HEURISTIC_REGISTRY",
    "PAPER_HEURISTICS",
    "create_heuristic",
    "available_heuristics",
]
