"""Record types shared by the HTM, the Gantt charts and the heuristics.

The paper's notation (Section 2.4) is kept where practical: a task mapped on
server *k* has an arrival date ``a``, an unloaded duration ``rho`` and a
(real or simulated) completion date ``R``; before mapping a new task the HTM
predicts finish dates ``pi_j`` and, with the new task, ``pi'_j``; the
perturbation of the new task on task *j* is ``pi'_j - pi_j``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["PHASE_NAMES", "TracedTask", "HtmPrediction"]

#: Names of the three phases of a task, in execution order (Fig. 1).
PHASE_NAMES: Tuple[str, str, str] = ("input", "compute", "output")


@dataclass
class TracedTask:
    """Static information the HTM keeps about one mapped task.

    Parameters
    ----------
    task_id:
        Identifier of the task (matches :class:`repro.workload.tasks.Task`).
    server:
        Server the task was mapped on.
    mapped_at:
        Date at which the agent mapped the task (``a`` in the paper: in the
        client-agent-server model the input transfer starts right away).
    input_s / compute_s / output_s:
        Unloaded durations of the three phases on that server.
    local_number:
        The task's local number on the server (Section 2.4): the *j*-th task
        ever mapped on the server gets local number *j*.
    """

    task_id: str
    server: str
    mapped_at: float
    input_s: float
    compute_s: float
    output_s: float
    local_number: int

    @property
    def unloaded_duration(self) -> float:
        """Duration of the task alone on its server (``rho``)."""
        return self.input_s + self.compute_s + self.output_s


@dataclass(frozen=True)
class HtmPrediction:
    """Result of asking the HTM "what if the new task were mapped on server s?".

    Attributes
    ----------
    server:
        Candidate server.
    task_id:
        Identifier of the new (not yet mapped) task.
    now:
        Date of the prediction.
    new_task_completion:
        Predicted completion date of the new task on that server
        (``pi'_{n+1}`` in the paper).
    completions_without:
        Predicted completion date of every already-mapped, unfinished task
        *without* the new task (``pi_j``).
    completions_with:
        Same, *with* the new task (``pi'_j``).
    perturbations:
        ``pi'_j - pi_j`` for every already-mapped, unfinished task.
    """

    server: str
    task_id: str
    now: float
    new_task_completion: float
    completions_without: Mapping[str, float] = field(default_factory=dict)
    completions_with: Mapping[str, float] = field(default_factory=dict)
    perturbations: Mapping[str, float] = field(default_factory=dict)

    @property
    def sum_perturbation(self) -> float:
        """Sum of the perturbations on the already-mapped tasks (MP's objective)."""
        return float(sum(self.perturbations.values()))

    @property
    def n_perturbed(self) -> int:
        """Number of already-mapped tasks whose completion is delayed (MNI's objective)."""
        return sum(1 for p in self.perturbations.values() if p > 1e-9)

    @property
    def predicted_flow(self) -> float:
        """Predicted flow of the new task (completion − mapping date)."""
        return self.new_task_completion - self.now

    @property
    def sum_flow_increase(self) -> float:
        """MSF's objective: sum of perturbations plus the new task's flow."""
        return self.sum_perturbation + self.predicted_flow

    def perturbation_of(self, task_id: str) -> float:
        """Perturbation inflicted on one specific already-mapped task."""
        return float(self.perturbations.get(task_id, 0.0))
