"""The Historical Trace Manager (HTM).

The HTM is the paper's central mechanism (Section 2.3): it "stores and keeps
track of information about each task.  It simulates the execution of tasks on
resources and is able to predict the completion time of each task assigned to
a server."  Concretely, for every server it maintains a fluid simulation of
the tasks mapped there — each task being the sequence *input transfer →
computation → output transfer* on processor-shared resources — and answers
two questions:

* *prediction* (:meth:`HistoricalTraceManager.predict`): if the new task were
  mapped on server *s*, when would it finish, and by how much would every
  already-mapped task be delayed (the **perturbation**)?
* *commitment* (:meth:`HistoricalTraceManager.commit`): the agent actually
  mapped the task; record it so future predictions account for it.

The HTM is deliberately independent from the ground-truth platform: it only
sees what the agent sees (static problem descriptions and the mapping
decisions), which is why its predictions can drift when the real servers are
noisy — exactly the model error measured in Table 1 of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Callable, Dict, Iterable, List, Mapping, Optional

from ..errors import SchedulingError
from ..simulation.fluid import FluidNetwork, FluidStage
from ..workload.problems import PhaseCosts, ProblemSpec
from ..workload.tasks import Task
from .gantt import GanttChart, chart_from_states
from .records import HtmPrediction, TracedTask

__all__ = ["ServerTrace", "HistoricalTraceManager"]

#: Resource names used inside every server trace.
_TRACE_RESOURCES = ("net_in", "cpu", "net_out")

#: Type of the callables that give the unloaded costs of a problem on a server.
CostsProvider = Callable[[ProblemSpec], PhaseCosts]


@dataclass
class ServerTrace:
    """The HTM's view of one server: mapped tasks and their fluid simulation."""

    server: str
    costs_provider: CostsProvider
    cpu_count: int = 1
    network: FluidNetwork = None  # type: ignore[assignment]
    tasks: Dict[str, TracedTask] = field(default_factory=dict)
    next_local_number: int = 1
    #: Cached free-run completion dates, valid while the network's structural
    #: version is :attr:`_cache_version` (see :meth:`free_run_completions`).
    _cached_completions: Optional[Dict[object, float]] = field(
        default=None, repr=False, compare=False
    )
    _cache_version: int = field(default=-1, repr=False, compare=False)
    #: Baseline-cache behaviour counters (see :mod:`repro.obs.counters`).
    cache_hits: int = field(default=0, repr=False, compare=False)
    cache_misses: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.network is None:
            self.network = FluidNetwork(
                {"net_in": 1.0, "cpu": float(self.cpu_count), "net_out": 1.0},
                per_job_caps={"cpu": 1.0},
            )

    def unfinished_task_ids(self) -> List[str]:
        """Ids of the tasks the HTM believes are still running on the server."""
        return [str(key) for key in self.network.unfinished_keys()]

    def free_run_completions(self) -> Mapping[object, float]:
        """Completion date of every task if nothing more is mapped (cached).

        The result is memoised against :attr:`FluidNetwork.version`: mapping,
        removing or forgetting a task (or a capacity change) invalidates it,
        whereas merely advancing the clock does not — a free run yields the
        same absolute completion dates from any clock position.  This is the
        fast path behind the HTM's incremental prediction mode: one baseline
        simulation is shared by every candidate-server ``predict`` of a
        scheduling decision instead of one fresh ``copy()`` +
        ``run_to_completion()`` per candidate.
        """
        if self._cached_completions is None or self._cache_version != self.network.version:
            self._cached_completions = dict(self.network.copy().run_to_completion())
            self._cache_version = self.network.version
            self.cache_misses += 1
        else:
            self.cache_hits += 1
        # Read-only view: a caller mutating the baseline would otherwise
        # corrupt every later incremental prediction until the next
        # structural mutation.
        return MappingProxyType(self._cached_completions)

    def invalidate_prediction_cache(self) -> None:
        """Drop the memoised free-run baseline (forces a fresh simulation)."""
        self._cached_completions = None
        self._cache_version = -1

    def predicted_completions(self, incremental: bool = True) -> Dict[str, float]:
        """Predicted completion date of every unfinished task (what-if free run).

        With ``incremental=False`` the free run is recomputed from a fresh
        copy instead of the memoised baseline (the legacy A/B control arm).
        """
        unfinished = set(self.network.unfinished_keys())
        if incremental:
            completions = self.free_run_completions()
        else:
            completions = self.network.copy().run_to_completion()
        return {
            str(key): value for key, value in completions.items() if key in unfinished
        }


class HistoricalTraceManager:
    """Simulates, per server, the execution of every task the agent mapped.

    Parameters
    ----------
    resync_on_completion:
        When ``True`` (default, and the behaviour of the paper's
        implementation which receives NetSolve completion messages), a task
        reported as completed by the platform is removed from the trace at the
        *actual* completion date, re-anchoring the simulation.  When ``False``
        the HTM trusts its own simulation only — the ablation studied as the
        paper's second "future work" item.
    model_communication:
        When ``False`` the input/output transfer phases are ignored by the
        trace (compute-only model) — used by an ablation benchmark.
    incremental_predictions:
        When ``True`` (default), :meth:`predict` reuses a cached free-run
        baseline (the "without the new task" simulation) of each server trace
        instead of deep-copying and re-simulating the whole network per
        candidate server.  The cache is invalidated automatically whenever the
        trace mutates (``commit``, ``notify_completion``, ``notify_failure``,
        ``clear_server``); advancing the clock keeps it valid.  Predictions
        are numerically identical to the legacy copy-and-rerun path (up to
        floating-point integration order, well below 1e-6 s); set to ``False``
        to force the legacy path, e.g. for A/B benchmarking.

    Both prediction arms run on the virtual-time fluid core
    (:mod:`repro.simulation.fluid`): a what-if ``copy()`` shares the immutable
    per-job records and a free run costs O(events · log J) instead of
    rescanning every job at every event, which is what keeps ``predict``
    off the top of the campaign profile even for traces carrying thousands
    of tasks (see ``bench_htm_predict_large_n_*`` in
    ``benchmarks/bench_micro.py``).
    """

    def __init__(
        self,
        resync_on_completion: bool = True,
        model_communication: bool = True,
        incremental_predictions: bool = True,
    ):
        self.resync_on_completion = resync_on_completion
        self.model_communication = model_communication
        self.incremental_predictions = incremental_predictions
        self._traces: Dict[str, ServerTrace] = {}
        self._placements: Dict[str, str] = {}  # task_id -> server name
        # Observability (see repro.obs): plain-int operation counters, and an
        # optional trace bus the middleware wires in.  ``tracer is None`` is
        # the zero-overhead-when-off guard on the hooks below.
        self.n_predicts = 0
        self.n_commits = 0
        self.tracer = None

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register_server(
        self, server: str, costs_provider: CostsProvider, cpu_count: int = 1
    ) -> None:
        """Declare a server and the way to obtain unloaded costs on it.

        ``cpu_count`` mirrors the server's processor count so the trace shares
        the CPU the same way the real machine does.
        """
        if server in self._traces:
            raise SchedulingError(f"server {server!r} is already registered with the HTM")
        self._traces[server] = ServerTrace(
            server=server, costs_provider=costs_provider, cpu_count=cpu_count
        )

    def unregister_server(self, server: str) -> None:
        """Forget a server entirely (e.g. it left the middleware)."""
        trace = self._traces.pop(server, None)
        if trace is not None:
            for task_id in list(self._placements):
                if self._placements[task_id] == server:
                    del self._placements[task_id]

    def servers(self) -> List[str]:
        """Names of the registered servers."""
        return list(self._traces)

    def has_server(self, server: str) -> bool:
        """Whether ``server`` is known to the HTM."""
        return server in self._traces

    def trace(self, server: str) -> ServerTrace:
        """The trace of ``server`` (raises :class:`SchedulingError` if unknown)."""
        try:
            return self._traces[server]
        except KeyError:
            raise SchedulingError(f"server {server!r} is not registered with the HTM") from None

    def unfinished_total(self) -> int:
        """Tasks still unfinished across every server trace.

        The HTM's view of the grid's backlog — the metrics sampler reads it
        at every tick, so iteration is over the sorted server names for a
        deterministic (and insertion-order-independent) account.
        """
        return sum(
            len(self._traces[server].unfinished_task_ids())
            for server in sorted(self._traces)
        )

    # ------------------------------------------------------------------ #
    # the two HTM operations: predict and commit
    # ------------------------------------------------------------------ #
    def predict(self, server: str, task: Task, now: float) -> HtmPrediction:
        """Simulate the mapping of ``task`` on ``server`` at date ``now``.

        Returns the prediction used by the heuristics of Section 4: the
        completion date of the new task and the perturbation it inflicts on
        every already-mapped, unfinished task of that server.
        """
        trace = self.trace(server)
        trace.network.advance_to(now)
        unfinished = set(trace.network.unfinished_keys())

        if self.incremental_predictions:
            baseline = trace.free_run_completions()
        else:
            baseline = trace.network.copy().run_to_completion()
        completions_without = {
            str(k): v for k, v in baseline.items() if k in unfinished
        }

        with_new = trace.network.copy()
        with_new.add_task(task.task_id, arrival=now, stages=self._stages_for(trace, task), now=now)
        completions_with_all = with_new.run_to_completion()
        completions_with = {
            str(k): v for k, v in completions_with_all.items() if k in unfinished
        }
        new_completion = completions_with_all[task.task_id]

        perturbations = {
            task_id: completions_with[task_id] - completions_without[task_id]
            for task_id in completions_without
            if task_id in completions_with
        }
        self.n_predicts += 1
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "htm.predict",
                server=server,
                task=task.task_id,
                completion=new_completion,
                tracked=len(unfinished),
            )
        return HtmPrediction(
            server=server,
            task_id=task.task_id,
            now=now,
            new_task_completion=new_completion,
            completions_without=completions_without,
            completions_with=completions_with,
            perturbations=perturbations,
        )

    def predict_all(self, servers: Iterable[str], task: Task, now: float) -> Dict[str, HtmPrediction]:
        """Predictions for every candidate server (convenience for heuristics)."""
        return {server: self.predict(server, task, now) for server in servers}

    def commit(self, server: str, task: Task, now: float) -> TracedTask:
        """Record that the agent mapped ``task`` on ``server`` at date ``now``."""
        trace = self.trace(server)
        if task.task_id in self._placements:
            raise SchedulingError(f"task {task.task_id!r} is already tracked by the HTM")
        costs = trace.costs_provider(task.problem)
        record = TracedTask(
            task_id=task.task_id,
            server=server,
            mapped_at=now,
            input_s=costs.input_s if self.model_communication else 0.0,
            compute_s=costs.compute_s,
            output_s=costs.output_s if self.model_communication else 0.0,
            local_number=trace.next_local_number,
        )
        trace.next_local_number += 1
        trace.tasks[task.task_id] = record
        trace.network.add_task(task.task_id, arrival=now, stages=self._stages_for(trace, task), now=now)
        self._placements[task.task_id] = server
        self.n_commits += 1
        return record

    # ------------------------------------------------------------------ #
    # synchronisation with the real platform
    # ------------------------------------------------------------------ #
    def notify_completion(self, task_id: str, at: float) -> None:
        """The platform reported that ``task_id`` completed at date ``at``."""
        server = self._placements.pop(task_id, None)
        if server is None:
            return
        trace = self._traces.get(server)
        if trace is None:
            return
        if not self.resync_on_completion:
            return
        trace.network.advance_to(at)
        if task_id in trace.network:
            state = trace.network.task(task_id)
            if state.finished:
                trace.network.forget(task_id)
            else:
                # The real task finished earlier than simulated: re-anchor.
                trace.network.remove_task(task_id, at)

    def notify_failure(self, task_id: str, at: float) -> None:
        """The platform reported that ``task_id`` failed (collapse, rejection...)."""
        server = self._placements.pop(task_id, None)
        if server is None:
            return
        trace = self._traces.get(server)
        if trace is None:
            return
        trace.network.advance_to(at)
        if task_id in trace.network:
            state = trace.network.task(task_id)
            if state.finished:
                trace.network.forget(task_id)
            else:
                trace.network.remove_task(task_id, at)

    def clear_server(self, server: str, at: float) -> None:
        """Drop every unfinished task of a server (it collapsed)."""
        trace = self._traces.get(server)
        if trace is None:
            return
        trace.network.advance_to(at)
        for task_id in list(trace.network.unfinished_keys()):
            trace.network.remove_task(task_id, at)
            self._placements.pop(str(task_id), None)

    def advance_to(self, now: float) -> None:
        """Advance every server trace to date ``now``."""
        for trace in self._traces.values():
            trace.network.advance_to(now)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def placement_of(self, task_id: str) -> Optional[str]:
        """Server the HTM believes ``task_id`` is (still) mapped on."""
        return self._placements.get(task_id)

    def tracked_task_count(self, server: Optional[str] = None) -> int:
        """Number of unfinished tasks tracked, overall or for one server."""
        if server is not None:
            return len(self.trace(server).unfinished_task_ids())
        return sum(len(t.unfinished_task_ids()) for t in self._traces.values())

    def predicted_completions(self, server: str) -> Dict[str, float]:
        """Predicted completion dates of the unfinished tasks of ``server``."""
        return self.trace(server).predicted_completions(incremental=self.incremental_predictions)

    def gantt(self, server: str, until_completion: bool = True) -> GanttChart:
        """Gantt chart of a server trace.

        With ``until_completion`` (default) the chart shows the *predicted*
        full execution (a copy of the trace is run to completion first);
        otherwise it shows only what has been simulated so far.
        """
        trace = self.trace(server)
        network = trace.network.copy()
        if until_completion:
            network.run_to_completion()
        return chart_from_states(server, network.tasks())

    # ------------------------------------------------------------------ #
    def _stages_for(self, trace: ServerTrace, task: Task) -> List[FluidStage]:
        costs = trace.costs_provider(task.problem)
        if self.model_communication:
            return [
                FluidStage("net_in", costs.input_s),
                FluidStage("cpu", costs.compute_s),
                FluidStage("net_out", costs.output_s),
            ]
        return [FluidStage("cpu", costs.compute_s)]

    def __repr__(self) -> str:
        return (
            f"<HistoricalTraceManager servers={len(self._traces)} "
            f"tracked_tasks={len(self._placements)}>"
        )
