"""Event primitives of the discrete-event simulation engine.

The engine follows the SimPy design: an :class:`Event` is a value that may be
*triggered* (scheduled), then *processed* (its callbacks are executed at its
scheduled simulation time).  Processes (see :mod:`repro.simulation.process`)
are generators that ``yield`` events and are resumed when the yielded event is
processed.

Only the subset of SimPy needed by the platform model is implemented, but it
is implemented faithfully (success / failure propagation, ``AnyOf`` /
``AllOf`` conditions, interrupts), so the engine is reusable for other
discrete-event models.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Environment

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Initialize",
    "Interruption",
    "Interrupt",
    "Condition",
    "AllOf",
    "AnyOf",
    "ConditionValue",
]


class _Pending:
    """Unique sentinel for the value of a not-yet-triggered event."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<PENDING>"


#: Sentinel used as the value of events that have not been triggered yet.
PENDING = _Pending()

#: Priority of urgent events (processed before normal events at equal time).
URGENT = 0
#: Priority of normal events.
NORMAL = 1


class Interrupt(Exception):
    """Exception thrown into a process when it is interrupted.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the process was interrupted.
    """

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`repro.simulation.Process.interrupt`."""
        return self.args[0]


class Event:
    """An event that may happen at some point in simulated time.

    An event goes through three states:

    * *not triggered*: freshly created, not yet in the event calendar;
    * *triggered*: it has been scheduled and carries a value;
    * *processed*: its callbacks have been invoked.

    Callbacks are callables taking the event as sole argument.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: When an event fails and nobody ever inspects it, the engine raises
        #: the failure at the end of the step unless the event was "defused".
        self._defused: bool = False

    # -- state ------------------------------------------------------------- #
    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the callbacks of the event have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value of the event (or the exception if it failed)."""
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """Whether a failure of this event has been acknowledged."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    # -- triggering -------------------------------------------------------- #
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception`` as its value."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state (ok + value) of ``event``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- composition ------------------------------------------------------- #
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_event, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} object at {id(self):#x} [{state}]>"


class Timeout(Event):
    """An event that is automatically triggered ``delay`` time units later."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    @property
    def delay(self) -> float:
        """The delay this timeout was created with."""
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout({self._delay}) object at {id(self):#x}>"


class Initialize(Event):
    """Event that starts a freshly created process (internal use)."""

    def __init__(self, env: "Environment", process):
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Interruption(Event):
    """Event that interrupts a process (internal use)."""

    def __init__(self, process, cause: Any):
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if process is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        self.callbacks = [self._interrupt]
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.process = process
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: Event) -> None:
        if self.process.triggered:
            # The process terminated before the interruption could take place.
            return
        # Unsubscribe the process from the event it is currently waiting for.
        target = self.process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self.process._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self.process._resume(self)


class ConditionValue:
    """Ordered mapping of the events of a condition to their values."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(str(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        """The triggered events, in trigger order."""
        return list(self.events)

    def values(self):
        """The values of the triggered events, in trigger order."""
        return [event.value for event in self.events]

    def items(self):
        """``(event, value)`` pairs in trigger order."""
        return [(event, event.value) for event in self.events]

    def todict(self) -> dict:
        """Return the condition value as a plain dictionary."""
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """An event that is triggered once ``evaluate(events, count)`` is true.

    ``evaluate`` receives the list of sub-events and the number of already
    triggered ones.  The two standard evaluation functions are available as
    :meth:`all_events` (``AllOf``) and :meth:`any_event` (``AnyOf``).
    """

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        if not self._events:
            # Immediately true for an empty list of events.
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.env is not env:
                raise ValueError("all events of a condition must share the environment")

        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None and event.triggered:
                value.events.append(event)

    def _build_value(self, event: Event) -> None:
        self._remove_check_callbacks()
        if event._ok:
            value = ConditionValue()
            self._populate_value(value)
            self.succeed(value)

    def _remove_check_callbacks(self) -> None:
        for event in self._events:
            if event.callbacks is not None and self._check in event.callbacks:
                event.callbacks.remove(self._check)
            if isinstance(event, Condition):
                event._remove_check_callbacks()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            # Propagate failures immediately.
            event.defused = True
            self._remove_check_callbacks()
            self.fail(event.value)
        elif self._evaluate(self._events, self._count):
            self._build_value(event)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """Evaluation function of :class:`AllOf`."""
        return len(events) == count

    @staticmethod
    def any_event(events: List[Event], count: int) -> bool:
        """Evaluation function of :class:`AnyOf`."""
        return count > 0 or not events


class AllOf(Condition):
    """Condition triggered once *all* of its sub-events have triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition triggered once *any* of its sub-events has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_event, events)
