"""Reproducible random-number streams.

Experiments of the paper are stochastic along several independent axes
(inter-arrival dates, task-type draws, server speed noise, monitor report
jitter).  To keep runs reproducible *and* comparable — the paper compares the
*same metatask* scheduled by different heuristics — each axis gets its own
named stream derived from a single root seed with :func:`numpy.random.SeedSequence`
spawning.  Changing the heuristic therefore never changes the workload.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent, named random generators.

    Parameters
    ----------
    seed:
        Root seed.  Two :class:`RandomStreams` built from the same seed hand
        out identical streams for identical names, regardless of the order in
        which the streams are requested.

    Examples
    --------
    >>> streams = RandomStreams(42)
    >>> arrivals = streams["arrivals"]
    >>> noise = streams["speed-noise/artimon"]
    >>> float(arrivals.exponential(20.0)) > 0
    True
    """

    def __init__(self, seed: Optional[int] = 0):
        self._seed = seed
        self._generators: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> Optional[int]:
        """The root seed this family was built from."""
        return self._seed

    def __getitem__(self, name: str) -> np.random.Generator:
        """Return (and cache) the generator for stream ``name``."""
        generator = self._generators.get(name)
        if generator is None:
            # Derive a child seed deterministically from (root seed, name) so
            # that the request order does not matter.
            name_entropy = [ord(ch) for ch in name]
            seq = np.random.SeedSequence(
                entropy=self._seed if self._seed is not None else None,
                spawn_key=tuple(name_entropy),
            )
            generator = np.random.default_rng(seq)
            self._generators[name] = generator
        return generator

    def generator(self, name: str) -> np.random.Generator:
        """Alias of ``streams[name]``."""
        return self[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Return a new family whose streams are independent from this one."""
        child_seed = int(self[f"spawn/{name}"].integers(0, 2**63 - 1))
        return RandomStreams(child_seed)

    def names(self) -> Iterable[str]:
        """Names of the streams that have been requested so far."""
        return tuple(self._generators)

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self._seed} streams={len(self._generators)}>"
