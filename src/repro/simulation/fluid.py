"""Fluid (piecewise-linear) processor-sharing models — virtual-time core.

The paper models a time-shared server as follows (Section 2.3): when a server
executes *n* tasks, each task receives ``1/n`` of the total power of the
resource.  The same egalitarian sharing is assumed for data transfers on a
link ("we assume that all tasks can create communication bandwidth
interference for any other task", Section 6).

This module implements that model once, and both the *ground truth* platform
(:mod:`repro.platform.server`) and the agent's *Historical Trace Manager*
(:mod:`repro.core.htm`) reuse it:

* :class:`ProcessorSharingQueue` — a single resource whose capacity is shared
  equally among its active jobs; progress is piecewise linear between job
  arrivals/completions and capacity changes.
* :class:`FluidNetwork` — a set of named queues through which multi-stage
  tasks (input transfer → computation → output transfer) flow.

Both classes operate on an explicit *virtual clock*: the caller advances them
to a target time and receives the completions that occurred.  This makes the
same code usable inside a discrete-event simulation (driven by the
environment clock) and inside the HTM (driven by hypothetical what-if runs).

Virtual-time scheduling
-----------------------

Because the sharing is egalitarian, every active job of a queue progresses at
the *same* instantaneous rate.  The queue therefore tracks a single cumulative
per-job service function ``V(t)`` (piecewise linear, with slope ``rate()``
between events) instead of mutating each job on every slice:

* a job entering with ``work`` units at virtual time ``V`` is assigned the
  immutable completion target ``V + work``;
* its remaining work at any later moment is ``target - V(now)`` — no per-job
  state is ever touched while time advances, so long runs accumulate no
  per-job floating-point drift;
* a min-heap keyed by ``(target, insertion order)`` yields the next completion
  in O(log J); ``remove`` is a dictionary pop with *lazy deletion* — stale
  heap entries are discarded when they surface.

On top, :class:`FluidNetwork` schedules events through heaps as well: pending
arrivals live in a min-heap keyed by arrival date, and each queue exposes its
next completion as an O(1) peek of its own target heap.  The cross-queue
event layer is the min across those per-queue heap tops plus the arrival-heap
head — a flat min because the canonical networks of this repository have
R = 3 resources (a binary heap over queue tops only pays off for R ≫ 10).
``advance_to`` / ``run_to_completion`` are thus O((events + mutations)·log)
where the previous implementation rescanned every job of every queue at every
event (O(E·R·J) per run); ``copy()`` shares the immutable job records instead
of cloning them.  The pre-virtual-time core is preserved verbatim in
:mod:`repro.simulation.fluid_legacy` as the equivalence oracle for tests and
A/B benchmarks.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import SimulationError

__all__ = [
    "EPSILON",
    "PSJob",
    "ProcessorSharingQueue",
    "FluidStage",
    "FluidTaskState",
    "FluidEvent",
    "FluidNetwork",
]

#: Remaining amounts of work below this threshold are considered finished.
EPSILON = 1e-9


@dataclass(frozen=True)
class PSJob:
    """A job inside a :class:`ProcessorSharingQueue`.

    The record is immutable: ``target`` is the value of the queue's cumulative
    service function ``V`` at which the job completes (``V(entry) + work``),
    fixed at insertion.  Immutability is what lets :meth:`ProcessorSharingQueue.copy`
    share job records between clones.
    """

    key: Hashable
    target: float
    entered_at: float
    order: int

    def copy(self) -> "PSJob":
        """Return the job itself (records are immutable, sharing is safe)."""
        return self


class ProcessorSharingQueue:
    """Egalitarian processor sharing of one resource, in virtual time.

    Parameters
    ----------
    capacity:
        Amount of work the resource completes per unit of time when enough
        jobs are active.  With *n* active jobs each one progresses at
        ``capacity / n`` (subject to ``per_job_cap``).
    per_job_cap:
        Optional upper bound on the rate a single job can enjoy.  This models
        multi-processor servers: a machine with *c* CPUs has ``capacity = c``
        and ``per_job_cap = 1`` — one task can never use more than one CPU,
        but up to *c* tasks run without interfering.  ``None`` (default)
        means no cap, i.e. the paper's single-CPU ``1/n`` model.
    time:
        Initial value of the queue's internal clock.
    """

    def __init__(
        self,
        capacity: float = 1.0,
        time: float = 0.0,
        per_job_cap: Optional[float] = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if per_job_cap is not None and per_job_cap <= 0:
            raise ValueError("per_job_cap must be strictly positive (or None)")
        self._capacity = float(capacity)
        self._per_job_cap = float(per_job_cap) if per_job_cap is not None else None
        self._time = float(time)
        #: Cumulative per-job service V(t) since the queue's creation.
        self._vtime = 0.0
        self._jobs: Dict[Hashable, PSJob] = {}
        #: Min-heap of ``(target, order, key)``; entries whose ``(key, order)``
        #: no longer matches ``_jobs`` are stale (lazy deletion).
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._order = 0
        # Hot-path work counters (rolled up by :mod:`repro.obs.counters`).
        # Plain ints on purpose: one ``+= 1`` next to a heap push is
        # unmeasurable, a dict lookup per event is not.  Deterministic per
        # run — they describe the implementation's work, never the model's.
        self.n_heap_pushes = 0
        self.n_lazy_discards = 0
        self.n_completions = 0
        self.n_reanchors = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def time(self) -> float:
        """Internal clock of the queue."""
        return self._time

    @property
    def capacity(self) -> float:
        """Current total capacity of the resource."""
        return self._capacity

    @property
    def per_job_cap(self) -> Optional[float]:
        """Upper bound on the rate of a single job (``None`` = uncapped)."""
        return self._per_job_cap

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._jobs

    def active_keys(self) -> List[Hashable]:
        """Keys of the active jobs, in insertion order."""
        return [job.key for job in sorted(self._jobs.values(), key=lambda j: j.order)]

    def remaining(self, key: Hashable) -> float:
        """Remaining work of job ``key`` at the queue's current clock."""
        return self._jobs[key].target - self._vtime

    def total_remaining(self) -> float:
        """Sum of the remaining work of all active jobs."""
        return sum(job.target - self._vtime for job in self._jobs.values())

    def rate(self) -> float:
        """Progress rate currently enjoyed by each active job."""
        n = len(self._jobs)
        if n == 0:
            return 0.0
        rate = self._capacity / n
        if self._per_job_cap is not None:
            rate = min(rate, self._per_job_cap)
        return rate

    def utilization(self) -> float:
        """Fraction of the capacity currently consumed (0.0 — 1.0).

        With ``per_job_cap`` (the multi-CPU model) *n* jobs consume
        ``n * rate()`` of the capacity — e.g. 2 tasks on a 4-CPU server read
        0.5; without a cap any non-empty queue saturates the resource (the
        paper's egalitarian ``1/n`` sharing), reading 1.0.
        """
        n = len(self._jobs)
        if n == 0:
            return 0.0
        if self._capacity <= 0.0:
            return 1.0
        return min(1.0, n * self.rate() / self._capacity)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, key: Hashable, work: float, now: float) -> None:
        """Insert a new job with ``work`` units of work at time ``now``."""
        if key in self._jobs:
            raise SimulationError(f"job {key!r} is already active in this queue")
        if work < 0:
            raise ValueError("work must be non-negative")
        self.advance_to(now)
        job = PSJob(key, self._vtime + float(work), now, self._order)
        self._jobs[key] = job
        heapq.heappush(self._heap, (job.target, job.order, key))
        self._order += 1
        self.n_heap_pushes += 1

    def remove(self, key: Hashable, now: float) -> float:
        """Remove job ``key`` (e.g. cancelled) and return its remaining work.

        The heap entry of the job is *not* searched for: it goes stale and is
        discarded when it reaches the top (lazy deletion, O(1) here).
        """
        self.advance_to(now)
        job = self._jobs.pop(key)
        remaining = job.target - self._vtime
        if not self._jobs:
            self._reanchor()
        return remaining

    def set_capacity(
        self, capacity: float, now: float, per_job_cap: Optional[float] = ...
    ) -> None:
        """Change the resource capacity (and optionally the per-job cap) at ``now``.

        ``per_job_cap`` keeps its current value when omitted; pass ``None``
        explicitly to remove the cap.
        """
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.advance_to(now)
        self._capacity = float(capacity)
        if per_job_cap is not ...:
            if per_job_cap is not None and per_job_cap <= 0:
                raise ValueError("per_job_cap must be strictly positive (or None)")
            self._per_job_cap = float(per_job_cap) if per_job_cap is not None else None

    # ------------------------------------------------------------------ #
    # time evolution
    # ------------------------------------------------------------------ #
    def _min_target(self) -> Optional[float]:
        """Smallest live completion target, discarding stale heap entries."""
        heap = self._heap
        while heap:
            target, order, key = heap[0]
            job = self._jobs.get(key)
            if job is not None and job.order == order:
                return target
            heapq.heappop(heap)
            self.n_lazy_discards += 1
        return None

    def next_completion_time(self) -> float:
        """Time at which the next job completes if nothing else changes."""
        if not self._jobs:
            return math.inf
        min_remaining = self._min_target() - self._vtime
        if min_remaining <= EPSILON:
            return self._time
        rate = self.rate()
        if rate <= 0:
            return math.inf
        return self._time + min_remaining / rate

    def advance_to(self, now: float) -> List[Tuple[float, Hashable]]:
        """Advance the queue's clock to ``now``.

        Returns the list of ``(completion_time, key)`` pairs for the jobs that
        completed in the interval, in chronological (then insertion) order.
        """
        if now < self._time - 1e-6:
            raise SimulationError(
                f"cannot advance queue backwards (from {self._time} to {now})"
            )
        now = max(now, self._time)
        completions: List[Tuple[float, Hashable]] = []
        while self._jobs:
            t_next = self.next_completion_time()
            if t_next > now + EPSILON:
                break
            self._progress(max(t_next, self._time))
            finished: List[PSJob] = []
            while True:
                target = self._min_target()
                if target is None or target > self._vtime + EPSILON:
                    break
                _, _, key = heapq.heappop(self._heap)
                finished.append(self._jobs.pop(key))
            if not finished:  # pragma: no cover - float safety net
                break
            # Jobs finishing in the same instant are reported in insertion
            # order (their targets agree to within EPSILON but not exactly).
            finished.sort(key=lambda j: j.order)
            self.n_completions += len(finished)
            for job in finished:
                completions.append((self._time, job.key))
        self._progress(now)
        if not self._jobs:
            self._reanchor()
        return completions

    def _reanchor(self) -> None:
        """Reset the service function once the queue drains.

        Targets are meaningless with no jobs, so ``_vtime`` can restart from
        zero — bounding its magnitude by the longest *busy period* instead of
        the whole run, which keeps the absolute EPSILON comparisons against
        ``target - _vtime`` sharp on arbitrarily long horizons.
        """
        if self._vtime != 0.0 or self._heap:
            self.n_reanchors += 1
        self._vtime = 0.0
        self._heap.clear()

    def _progress(self, target: float) -> None:
        """Advance the service function linearly from the current clock to ``target``."""
        dt = target - self._time
        rate = self.rate()
        if dt > 0 and self._jobs and rate > 0:
            self._vtime += dt * rate
        self._time = max(self._time, target)

    # ------------------------------------------------------------------ #
    def copy(self) -> "ProcessorSharingQueue":
        """Return an independent copy of the queue.

        Job records are immutable, so the clone shares them: the copy is one
        dict copy and one list copy, with no per-job allocation.
        """
        clone = ProcessorSharingQueue.__new__(ProcessorSharingQueue)
        clone._capacity = self._capacity
        clone._per_job_cap = self._per_job_cap
        clone._time = self._time
        clone._vtime = self._vtime
        clone._jobs = dict(self._jobs)
        clone._heap = list(self._heap)
        clone._order = self._order
        clone.n_heap_pushes = self.n_heap_pushes
        clone.n_lazy_discards = self.n_lazy_discards
        clone.n_completions = self.n_completions
        clone.n_reanchors = self.n_reanchors
        return clone

    def counters(self) -> Dict[str, int]:
        """Hot-path work counters of this queue (see :mod:`repro.obs.counters`)."""
        return {
            "heap_pushes": self.n_heap_pushes,
            "lazy_discards": self.n_lazy_discards,
            "completions": self.n_completions,
            "reanchors": self.n_reanchors,
        }

    def __repr__(self) -> str:
        return (
            f"<ProcessorSharingQueue t={self._time:.3f} capacity={self._capacity} "
            f"jobs={len(self._jobs)}>"
        )


# --------------------------------------------------------------------------- #
# multi-stage fluid network
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FluidStage:
    """One stage of a task: ``work`` units to be served by resource ``resource``."""

    resource: str
    work: float

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError("stage work must be non-negative")


@dataclass
class FluidTaskState:
    """Progress record of one task inside a :class:`FluidNetwork`."""

    key: Hashable
    arrival: float
    stages: Tuple[FluidStage, ...]
    stage_index: int = -1
    stage_finish_times: List[float] = field(default_factory=list)
    start_time: Optional[float] = None
    completion_time: Optional[float] = None

    @property
    def started(self) -> bool:
        """Whether the task has entered its first stage."""
        return self.stage_index >= 0

    @property
    def finished(self) -> bool:
        """Whether every stage of the task has completed."""
        return self.completion_time is not None

    @property
    def current_stage(self) -> Optional[FluidStage]:
        """The stage currently in service, or ``None``."""
        if self.finished or not self.started:
            return None
        return self.stages[self.stage_index]

    @property
    def total_work(self) -> float:
        """Total amount of work of the task, all stages summed."""
        return sum(stage.work for stage in self.stages)

    def copy(self) -> "FluidTaskState":
        """Return an independent copy of the task state."""
        return FluidTaskState(
            key=self.key,
            arrival=self.arrival,
            stages=self.stages,
            stage_index=self.stage_index,
            stage_finish_times=list(self.stage_finish_times),
            start_time=self.start_time,
            completion_time=self.completion_time,
        )


@dataclass(frozen=True)
class FluidEvent:
    """A stage or task completion produced by :meth:`FluidNetwork.advance_to`."""

    time: float
    key: Hashable
    stage_index: int
    resource: str
    task_finished: bool


class FluidNetwork:
    """A set of processor-shared resources traversed by multi-stage tasks.

    The canonical use in this repository is one network per server with three
    resources — ``"net_in"``, ``"cpu"`` and ``"net_out"`` — and tasks whose
    stages are the input-data transfer, the computation and the output-data
    transfer (the three parts of a task of Fig. 1 of the paper).

    Event scheduling is heap-based (see the module docstring): pending
    arrivals sit in a min-heap keyed by arrival date, and each queue's next
    completion is an O(1) peek of its virtual-time target heap, so one event
    costs O(R + log) instead of a full rescan of every job of every queue.
    """

    def __init__(
        self,
        capacities: Dict[str, float],
        time: float = 0.0,
        per_job_caps: Optional[Dict[str, float]] = None,
    ):
        if not capacities:
            raise ValueError("a FluidNetwork needs at least one resource")
        per_job_caps = per_job_caps or {}
        self._queues: Dict[str, ProcessorSharingQueue] = {
            name: ProcessorSharingQueue(cap, time, per_job_cap=per_job_caps.get(name))
            for name, cap in capacities.items()
        }
        self._tasks: Dict[Hashable, FluidTaskState] = {}
        #: Tasks whose arrival is in the future, mapped to the sequence
        #: number of their *live* arrival-heap entry.
        self._pending: Dict[Hashable, int] = {}
        #: Min-heap of ``(arrival, seq, key)``; an entry is live only while
        #: ``_pending[key] == seq`` — matching on the sequence number (not
        #: mere membership) keeps an entry stale after its task is removed
        #: and the same key re-added with a different arrival date.
        self._arrival_heap: List[Tuple[float, int, Hashable]] = []
        self._seq = 0
        self._time = float(time)
        self._version = 0
        # Hot-path work counters (rolled up by :mod:`repro.obs.counters`).
        self.n_stage_events = 0
        self.n_arrivals_activated = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def time(self) -> float:
        """Internal clock of the network."""
        return self._time

    @property
    def version(self) -> int:
        """Structural version of the network.

        The counter increments on every mutation that can change the *future*
        trajectory of the simulation — adding or removing a task, forgetting a
        record, changing a capacity.  Merely advancing the clock does not bump
        it: a free run to completion yields the same absolute completion dates
        regardless of the clock position, which is what lets the HTM cache
        what-if baselines across ``advance_to`` calls (see
        :meth:`repro.core.htm.ServerTrace.free_run_completions`).
        """
        return self._version

    @property
    def resources(self) -> List[str]:
        """Names of the resources of the network."""
        return list(self._queues)

    def capacity(self, resource: str) -> float:
        """Capacity of ``resource``."""
        return self._queues[resource].capacity

    def utilization(self, resource: str) -> float:
        """Fraction of ``resource``'s capacity currently consumed (0.0 — 1.0)."""
        return self._queues[resource].utilization()

    def tasks(self) -> List[FluidTaskState]:
        """All task states known to the network (finished ones included)."""
        return list(self._tasks.values())

    def task(self, key: Hashable) -> FluidTaskState:
        """State of task ``key``."""
        return self._tasks[key]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._tasks

    def active_count(self, resource: Optional[str] = None) -> int:
        """Number of unfinished tasks, optionally restricted to one resource."""
        if resource is None:
            return sum(1 for t in self._tasks.values() if not t.finished) + len(self._pending)
        return len(self._queues[resource])

    def unfinished_keys(self) -> List[Hashable]:
        """Keys of the tasks that have not completed yet (pending included)."""
        return [key for key, state in self._tasks.items() if not state.finished]

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def set_capacity(
        self,
        resource: str,
        capacity: float,
        now: float,
        per_job_cap: Optional[float] = ...,
    ) -> List[FluidEvent]:
        """Change a resource capacity at ``now`` (advancing the network first).

        ``per_job_cap`` keeps its current value when omitted.
        """
        events = self.advance_to(now)
        self._queues[resource].set_capacity(capacity, now, per_job_cap=per_job_cap)
        self._version += 1
        return events

    def add_task(
        self,
        key: Hashable,
        arrival: float,
        stages: Sequence[FluidStage],
        now: Optional[float] = None,
    ) -> List[FluidEvent]:
        """Register a task.

        ``arrival`` may be in the future (relative to the network clock), in
        which case the task stays pending until the network is advanced past
        its arrival date.  If ``now`` is given, the network is first advanced
        to ``now`` and the returned list contains the events of that advance.
        """
        if key in self._tasks:
            raise SimulationError(f"task {key!r} already exists in this network")
        stages = tuple(stages)
        if not stages:
            raise ValueError("a task needs at least one stage")
        for stage in stages:
            if stage.resource not in self._queues:
                raise KeyError(f"unknown resource {stage.resource!r}")
        events: List[FluidEvent] = []
        if now is not None:
            events.extend(self.advance_to(now))
        state = FluidTaskState(key=key, arrival=float(arrival), stages=stages)
        self._tasks[key] = state
        self._version += 1
        if arrival <= self._time + EPSILON:
            self._start_task(state, self._time, events)
        else:
            self._pending[key] = self._seq
            heapq.heappush(self._arrival_heap, (state.arrival, self._seq, key))
            self._seq += 1
        return events

    def remove_task(self, key: Hashable, now: float) -> FluidTaskState:
        """Remove a (possibly running) task, e.g. because its server collapsed."""
        self.advance_to(now)
        state = self._tasks.pop(key)
        self._version += 1
        # A pending key leaves the table; its arrival-heap entry goes stale
        # (the sequence number no longer matches) and is discarded lazily.
        self._pending.pop(key, None)
        if state.started and not state.finished:
            queue = self._queues[state.stages[state.stage_index].resource]
            if key in queue:
                queue.remove(key, now)
        return state

    def forget(self, key: Hashable) -> None:
        """Drop the record of a *finished* task (memory reclamation)."""
        state = self._tasks.get(key)
        if state is None:
            return
        if not state.finished:
            raise SimulationError(f"cannot forget unfinished task {key!r}")
        # Dropping a *finished* record cannot change the future trajectory, so
        # the structural version stays put and cached free-run baselines
        # survive completion notifications (re-adding the key later bumps it).
        del self._tasks[key]

    # ------------------------------------------------------------------ #
    # time evolution
    # ------------------------------------------------------------------ #
    def _next_arrival(self) -> float:
        """Earliest pending arrival (heap peek, discarding stale entries)."""
        heap = self._arrival_heap
        while heap:
            arrival, seq, key = heap[0]
            if self._pending.get(key) == seq:
                return arrival
            heapq.heappop(heap)
        return math.inf

    def next_event_time(self) -> float:
        """Earliest time of the next stage completion or pending arrival."""
        t = self._next_arrival()
        for queue in self._queues.values():
            t_queue = queue.next_completion_time()
            if t_queue < t:
                t = t_queue
        return t

    def advance_to(self, now: float) -> List[FluidEvent]:
        """Advance the network clock to ``now`` and return what happened."""
        if now < self._time - 1e-6:
            raise SimulationError(
                f"cannot advance network backwards (from {self._time} to {now})"
            )
        events: List[FluidEvent] = []
        now = max(now, self._time)
        guard = 0
        while True:
            t_next = self.next_event_time()
            if t_next == math.inf or t_next > now + EPSILON:
                break
            self._step_to(max(t_next, self._time), events)
            guard += 1
            if guard > 50_000_000:  # pragma: no cover - defensive
                raise SimulationError("FluidNetwork.advance_to did not converge")
        self._step_to(now, events)
        return events

    def run_to_completion(self, horizon: float = math.inf) -> Dict[Hashable, float]:
        """Advance until every task has finished (or ``horizon`` is reached).

        Returns a mapping from task key to completion time for the tasks that
        have finished.  Mainly used by the HTM on *copies* of the live network
        to answer "what if" questions.
        """
        while True:
            t_next = self.next_event_time()
            if t_next == math.inf or t_next > horizon:
                break
            self.advance_to(t_next)
        return {
            key: state.completion_time
            for key, state in self._tasks.items()
            if state.completion_time is not None
        }

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _step_to(self, target: float, events: List[FluidEvent]) -> None:
        """Advance every queue to ``target`` and process stage transitions."""
        completions: List[Tuple[float, Hashable, str]] = []
        for name, queue in self._queues.items():
            for time, key in queue.advance_to(target):
                completions.append((time, key, name))
        completions.sort(key=lambda item: item[0])
        self._time = max(self._time, target)
        self.n_stage_events += len(completions)
        for time, key, resource in completions:
            state = self._tasks[key]
            state.stage_finish_times.append(time)
            finished_task = state.stage_index + 1 >= len(state.stages)
            events.append(
                FluidEvent(time, key, state.stage_index, resource, task_finished=finished_task)
            )
            if finished_task:
                state.completion_time = time
            else:
                state.stage_index += 1
                self._enter_stage(state, time, events)
        # Activate tasks whose arrival date has been reached (heap order:
        # arrival date, then insertion order).
        heap = self._arrival_heap
        while heap:
            arrival, seq, key = heap[0]
            if self._pending.get(key) != seq:
                heapq.heappop(heap)
                continue
            if arrival > self._time + EPSILON:
                break
            heapq.heappop(heap)
            del self._pending[key]
            self.n_arrivals_activated += 1
            state = self._tasks[key]
            self._start_task(state, max(state.arrival, self._time), events)

    def _start_task(self, state: FluidTaskState, now: float, events: List[FluidEvent]) -> None:
        state.stage_index = 0
        state.start_time = now
        self._enter_stage(state, now, events)

    def _enter_stage(self, state: FluidTaskState, now: float, events: List[FluidEvent]) -> None:
        """Put the task's current stage in service, skipping zero-work stages."""
        while state.stage_index < len(state.stages):
            stage = state.stages[state.stage_index]
            if stage.work > EPSILON:
                self._queues[stage.resource].add(state.key, stage.work, now)
                return
            # Zero-work stage: complete it immediately.
            state.stage_finish_times.append(now)
            finished_task = state.stage_index == len(state.stages) - 1
            self.n_stage_events += 1
            events.append(
                FluidEvent(now, state.key, state.stage_index, stage.resource, finished_task)
            )
            if finished_task:
                state.completion_time = now
                return
            state.stage_index += 1

    # ------------------------------------------------------------------ #
    def copy(self) -> "FluidNetwork":
        """Return an independent deep copy of the network (for what-if runs)."""
        clone = FluidNetwork.__new__(FluidNetwork)
        clone._queues = {name: queue.copy() for name, queue in self._queues.items()}
        clone._tasks = {key: state.copy() for key, state in self._tasks.items()}
        clone._pending = dict(self._pending)
        clone._arrival_heap = list(self._arrival_heap)
        clone._seq = self._seq
        clone._time = self._time
        clone._version = self._version
        clone.n_stage_events = self.n_stage_events
        clone.n_arrivals_activated = self.n_arrivals_activated
        return clone

    def counters(self) -> Dict[str, int]:
        """Hot-path work counters, the per-resource queues summed in.

        Deterministic per run (pure function of the event sequence), but an
        *implementation* measure, not a model output: counters never enter
        :class:`~repro.results.RunRecord` metrics or fingerprints.
        """
        out = {
            "stage_events": self.n_stage_events,
            "arrivals_activated": self.n_arrivals_activated,
            "heap_pushes": 0,
            "lazy_discards": 0,
            "completions": 0,
            "reanchors": 0,
        }
        for queue in self._queues.values():
            out["heap_pushes"] += queue.n_heap_pushes
            out["lazy_discards"] += queue.n_lazy_discards
            out["completions"] += queue.n_completions
            out["reanchors"] += queue.n_reanchors
        return {key: out[key] for key in sorted(out)}

    def __repr__(self) -> str:
        active = sum(1 for t in self._tasks.values() if not t.finished)
        return (
            f"<FluidNetwork t={self._time:.3f} resources={list(self._queues)} "
            f"active_tasks={active}>"
        )
