"""Shared-resource primitives for the discrete-event engine.

Three classic SimPy-style resources are provided:

* :class:`Resource` — a counting semaphore with a FIFO wait queue.  Requests
  are events; releasing wakes up the next waiter.
* :class:`Container` — a continuous stock that processes can ``put`` into and
  ``get`` from.
* :class:`Store` — a FIFO store of arbitrary Python objects.

They are used by the platform model for things that are *not* processor
shared (e.g. the agent's request-handling capacity, recovery slots), while
processor-shared execution uses :mod:`repro.simulation.fluid`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from ..errors import SimulationError
from .engine import Environment
from .events import Event

__all__ = ["Request", "Release", "Resource", "Container", "Store"]


class Request(Event):
    """Request event returned by :meth:`Resource.request`.

    The event succeeds once the resource grants a slot to the requester.
    It can be used as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ...
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw the request if it has not been granted yet."""
        if not self.triggered:
            self.resource._cancel(self)


class Release(Event):
    """Release event returned by :meth:`Resource.release` (succeeds at once)."""

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        self.succeed()


class Resource:
    """A resource with ``capacity`` usage slots and a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be strictly positive")
        self.env = env
        self._capacity = int(capacity)
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def capacity(self) -> int:
        """Total number of usage slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        """Request a usage slot; the returned event triggers when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release the slot held by ``request`` and wake up the next waiter."""
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
        self._grant_waiters()
        return Release(self, request)

    # ------------------------------------------------------------------ #
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant_waiters(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()

    def __repr__(self) -> str:
        return f"<Resource capacity={self._capacity} used={self.count} queued={len(self.queue)}>"


class _ContainerPut(Event):
    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be strictly positive")
        super().__init__(container.env)
        self.amount = amount
        container._puts.append(self)
        container._trigger()


class _ContainerGet(Event):
    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be strictly positive")
        super().__init__(container.env)
        self.amount = amount
        container._gets.append(self)
        container._trigger()


class Container:
    """A continuous stock with an optional capacity bound."""

    def __init__(self, env: Environment, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be strictly positive")
        if init < 0 or init > capacity:
            raise ValueError("init must lie within [0, capacity]")
        self.env = env
        self._capacity = float(capacity)
        self._level = float(init)
        self._puts: Deque[_ContainerPut] = deque()
        self._gets: Deque[_ContainerGet] = deque()

    @property
    def capacity(self) -> float:
        """Maximum stock level."""
        return self._capacity

    @property
    def level(self) -> float:
        """Current stock level."""
        return self._level

    def put(self, amount: float) -> _ContainerPut:
        """Add ``amount`` to the stock (waits while the container is full)."""
        return _ContainerPut(self, amount)

    def get(self, amount: float) -> _ContainerGet:
        """Remove ``amount`` from the stock (waits while it is insufficient)."""
        return _ContainerGet(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts and self._level + self._puts[0].amount <= self._capacity:
                put = self._puts.popleft()
                self._level += put.amount
                put.succeed()
                progressed = True
            if self._gets and self._level >= self._gets[0].amount:
                get = self._gets.popleft()
                self._level -= get.amount
                get.succeed()
                progressed = True


class _StorePut(Event):
    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._puts.append(self)
        store._trigger()


class _StoreGet(Event):
    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._gets.append(self)
        store._trigger()


class Store:
    """A FIFO store of Python objects with an optional capacity bound."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be strictly positive")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._puts: Deque[_StorePut] = deque()
        self._gets: Deque[_StoreGet] = deque()

    @property
    def capacity(self) -> float:
        """Maximum number of stored items."""
        return self._capacity

    def put(self, item: Any) -> _StorePut:
        """Insert ``item`` (waits while the store is full)."""
        return _StorePut(self, item)

    def get(self) -> _StoreGet:
        """Retrieve the oldest item (waits while the store is empty)."""
        return _StoreGet(self)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts and len(self.items) < self._capacity:
                put = self._puts.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            if self._gets and self.items:
                get = self._gets.popleft()
                get.succeed(self.items.pop(0))
                progressed = True

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"<Store items={len(self.items)} queued_puts={len(self._puts)} queued_gets={len(self._gets)}>"


def __getattr__(name: str) -> Any:  # pragma: no cover - convenience
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
