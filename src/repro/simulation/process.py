"""Generator-backed simulation processes.

A :class:`Process` wraps a Python generator.  The generator yields
:class:`~repro.simulation.events.Event` instances; each time a yielded event
is processed the generator is resumed with the event's value (or the event's
exception is thrown into it when the event failed).  The process itself is an
event that triggers when the generator terminates, which lets other processes
wait for it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..errors import SimulationError, StopProcess
from .events import Event, Initialize, Interruption, PENDING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Environment

__all__ = ["Process", "ProcessGenerator"]

#: Type alias for the generators accepted by :class:`Process`.
ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running process of the simulation.

    Parameters
    ----------
    env:
        The environment the process lives in.
    generator:
        A generator yielding events.  The value the generator returns (either
        via ``return value`` or by raising :class:`~repro.errors.StopProcess`)
        becomes the value of the process event.
    name:
        Optional name used in ``repr`` and error messages.
    """

    def __init__(self, env: "Environment", generator: ProcessGenerator, name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise ValueError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", type(generator).__name__)
        #: The event this process is currently waiting for (``None`` when the
        #: process is being initialised or has terminated).
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` while the wrapped generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process.

        The process receives an :class:`~repro.simulation.events.Interrupt`
        exception at its current ``yield`` statement.  Interrupting a
        terminated process raises :class:`~repro.errors.SimulationError`.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt terminated process {self.name!r}")
        Interruption(self, cause)

    # ------------------------------------------------------------------ #
    def _resume(self, event: Event) -> None:
        """Resume the generator with the value (or exception) of ``event``."""
        self.env._active_proc = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The process has "seen" the failure: defuse it.
                    event.defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                # Normal termination of the generator.
                self._ok = True
                self._value = exc.value
                self.env.schedule(self)
                break
            except StopProcess as exc:
                self._ok = True
                self._value = exc.value
                self.env.schedule(self)
                break
            except BaseException as exc:
                # The generator raised: the process fails.
                self._ok = False
                self._value = exc
                self.env.schedule(self)
                break

            # The generator yielded a new event to wait for.
            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process {self.name!r} yielded {next_event!r}, which is not an Event"
                )
                self._ok = False
                self._value = error
                self.env.schedule(self)
                break

            if next_event.callbacks is not None:
                # The event has not been processed yet: subscribe and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # The event was already processed: loop and feed it immediately.
            event = next_event

        self.env._active_proc = None

    def __repr__(self) -> str:
        return f"<Process({self.name}) object at {id(self):#x}>"
