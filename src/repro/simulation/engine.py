"""The discrete-event simulation environment.

:class:`Environment` keeps the simulation clock and the event calendar (a
binary heap ordered by ``(time, priority, insertion index)`` so that the
execution order is fully deterministic).  It exposes SimPy-compatible factory
helpers (``process``, ``timeout``, ``event``, ``all_of``, ``any_of``) so that
models written against SimPy port over directly.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, List, Optional, Tuple

from ..errors import EmptySchedule, SimulationError
from .events import AllOf, AnyOf, Event, NORMAL, PENDING, Timeout, URGENT
from .process import Process, ProcessGenerator

__all__ = ["Environment", "Infinity"]

#: Convenience alias used for "run forever" bounds.
Infinity = float("inf")


class Environment:
    """Execution environment of a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (defaults to ``0.0``).

    Notes
    -----
    The event calendar orders events by time, then priority (urgent events
    first), then by insertion order, making runs reproducible bit-for-bit for
    a given model and seed.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_proc: Optional[Process] = None

    # ------------------------------------------------------------------ #
    # clock & calendar
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (``None`` between steps)."""
        return self._active_proc

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Insert ``event`` into the calendar ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))
        self._eid += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the calendar is empty."""
        return self._queue[0][0] if self._queue else Infinity

    def step(self) -> None:
        """Process the next event of the calendar.

        Raises
        ------
        EmptySchedule
            If there is no event left.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("the event calendar is empty") from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            raise SimulationError(f"event {event!r} was scheduled twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # A failed event that nobody handled: surface the error.
            exc = event._value
            raise exc

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #
    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the calendar is exhausted;
            * a number — run until the clock reaches that time;
            * an :class:`~repro.simulation.events.Event` — run until that
              event is processed, and return its value.

        Returns
        -------
        The value of ``until`` when it is an event, ``None`` otherwise.
        """
        at: Optional[float] = None
        stop_event: Optional[Event] = None

        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed.
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
                marker = {"done": False}
                stop_event.callbacks.append(lambda _evt: marker.__setitem__("done", True))
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be earlier than the current time ({self._now})"
                    )

        try:
            while True:
                if stop_event is not None and stop_event.processed:
                    break
                if at is not None and self.peek() > at:
                    self._now = at
                    break
                self.step()
        except EmptySchedule:
            if stop_event is not None and not stop_event.triggered:
                raise SimulationError(
                    "the simulation ran out of events before the awaited event triggered"
                ) from None

        if stop_event is not None:
            if stop_event._value is PENDING:
                raise SimulationError(
                    "the simulation stopped before the awaited event triggered"
                )
            if stop_event._ok:
                return stop_event._value
            raise stop_event._value
        return None

    # ------------------------------------------------------------------ #
    # factories
    # ------------------------------------------------------------------ #
    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new :class:`~repro.simulation.process.Process`."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`~repro.simulation.events.Timeout` event."""
        return Timeout(self, delay, value=value)

    def event(self) -> Event:
        """Create a plain, untriggered :class:`~repro.simulation.events.Event`."""
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create a condition that waits for all the ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create a condition that waits for any of the ``events``."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"
