"""Discrete-event simulation substrate.

This package is a self-contained, SimPy-style discrete-event simulation
engine plus the fluid processor-sharing models that the rest of the library
builds upon:

* :class:`Environment`, :class:`Process`, :class:`Event`, :class:`Timeout`,
  :class:`AllOf`, :class:`AnyOf`, :class:`Interrupt` — the event calendar and
  generator-based processes;
* :class:`Resource`, :class:`Container`, :class:`Store` — classic shared
  resources;
* :class:`ProcessorSharingQueue`, :class:`FluidNetwork` — the egalitarian
  time-sharing model of the paper (Section 2.3), implemented in *virtual
  time* with heap-based event scheduling (O(log J) per event; see
  :mod:`repro.simulation.fluid`; the pre-virtual-time core survives as the
  test oracle in :mod:`repro.simulation.fluid_legacy`);
* :class:`RandomStreams` — reproducible named random streams.
"""

from .engine import Environment, Infinity
from .events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    Timeout,
)
from .fluid import (
    EPSILON,
    FluidEvent,
    FluidNetwork,
    FluidStage,
    FluidTaskState,
    ProcessorSharingQueue,
    PSJob,
)
from .process import Process
from .resources import Container, Request, Resource, Store
from .rng import RandomStreams

__all__ = [
    "Environment",
    "Infinity",
    "Event",
    "Timeout",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Resource",
    "Request",
    "Container",
    "Store",
    "EPSILON",
    "PSJob",
    "ProcessorSharingQueue",
    "FluidStage",
    "FluidTaskState",
    "FluidEvent",
    "FluidNetwork",
    "RandomStreams",
]
