"""repro — reproduction of "New Dynamic Heuristics in the Client-Agent-Server Model".

The library is organised in five layers (see DESIGN.md):

* :mod:`repro.simulation` — a SimPy-style discrete-event engine and the fluid
  processor-sharing model of Section 2.3;
* :mod:`repro.platform` — the simulated NetSolve middleware (servers, agent,
  monitors, clients, faults): the ground truth;
* :mod:`repro.core` — the paper's contribution: the Historical Trace Manager,
  the perturbation and the heuristics (MCT, HMCT, MP, MSF, extensions);
* :mod:`repro.workload` — Tables 2–4 testbeds, problems and metatasks;
* :mod:`repro.metrics` / :mod:`repro.experiments` — Section 3 metrics and the
  harness reproducing every table of the evaluation;
* :mod:`repro.results` / :mod:`repro.api` — the unified results layer:
  provenance-stamped run records, the columnar queryable
  :class:`~repro.results.ResultSet` with JSONL/CSV persistence, and the
  stable ``api.run`` / ``api.sweep`` / ``api.load_results`` /
  ``api.compare`` facade;
* :mod:`repro.stats` — dependency-free statistics: Student-t confidence
  intervals, MSER-5 warm-up detection, the sequential stopping rule behind
  ``--ci-target`` / ``reps="auto"``, and the closed-form M/M/c validation
  suite behind ``repro validate`` / ``api.validate``.

Quickstart::

    from repro import GridMiddleware
    from repro.workload.testbed import first_set_platform, matmul_metatask
    from repro.metrics import summarize
    import numpy as np

    metatask = matmul_metatask(count=50, mean_interarrival=20.0,
                               rng=np.random.default_rng(0))
    result = GridMiddleware(first_set_platform(), heuristic="msf").run(metatask)
    print(summarize(result.tasks, "msf").as_dict())
"""

from .core import (
    HEURISTIC_REGISTRY,
    PAPER_HEURISTICS,
    HistoricalTraceManager,
    HmctHeuristic,
    HtmPrediction,
    MctHeuristic,
    MpHeuristic,
    MsfHeuristic,
    available_heuristics,
    create_heuristic,
)
from .errors import ReproError
from .metrics import summarize, tasks_finishing_sooner
from .results import ResultSet, RunRecord
from .store import CampaignStore, open_store
from .platform import (
    Agent,
    ComputeServer,
    FaultTolerancePolicy,
    GridMiddleware,
    MemoryModel,
    MiddlewareConfig,
    PlatformSpec,
    RunResult,
    SpeedNoiseModel,
)
from .simulation import Environment, FluidNetwork, ProcessorSharingQueue, RandomStreams
from .workload import (
    Metatask,
    PAPER_CATALOGUE,
    PoissonArrivals,
    ProblemCatalogue,
    Task,
    generate_metatask,
)
from . import api

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "ReproError",
    # core
    "HistoricalTraceManager",
    "HtmPrediction",
    "MctHeuristic",
    "HmctHeuristic",
    "MpHeuristic",
    "MsfHeuristic",
    "HEURISTIC_REGISTRY",
    "PAPER_HEURISTICS",
    "create_heuristic",
    "available_heuristics",
    # platform
    "Agent",
    "ComputeServer",
    "GridMiddleware",
    "MiddlewareConfig",
    "RunResult",
    "MemoryModel",
    "SpeedNoiseModel",
    "FaultTolerancePolicy",
    "PlatformSpec",
    # simulation
    "Environment",
    "FluidNetwork",
    "ProcessorSharingQueue",
    "RandomStreams",
    # workload
    "Task",
    "Metatask",
    "generate_metatask",
    "PoissonArrivals",
    "ProblemCatalogue",
    "PAPER_CATALOGUE",
    # metrics
    "summarize",
    "tasks_finishing_sooner",
    # results API
    "api",
    "ResultSet",
    "RunRecord",
    # campaign store
    "CampaignStore",
    "open_store",
]
