"""The stable programmatic facade of the reproduction.

A handful of entry points cover the whole results lifecycle — everything
else in the library is implementation detail that may move between minor
versions:

* :func:`run` — run any registered experiment (``table5`` ... ``table8``,
  the validation, the ablations, scenario sweeps) at any scale / seed /
  parallelism and get its result object back; table experiments carry their
  full provenance-stamped record set on ``result.result_set``.  Pass
  ``store="some/dir"`` to memoise every cell in a campaign store: warm
  re-runs skip simulation entirely and stay byte-identical.
* :func:`sweep` — run a heuristic × scenario grid and get the per-scenario
  tables, the cross-scenario ranking and one combined record set.
* :func:`resume` — finish an interrupted campaign from its store's journal,
  executing only the cells the crash lost.
* :func:`load_results` / :func:`save_results` — versioned JSONL / CSV
  persistence of record sets; saved files are byte-identical for identical
  records whatever the execution order or ``jobs`` level.
* :func:`compare` — structural diff of two result sets (or result files):
  the programmatic form of ``repro results diff``.
* :func:`check` — the static determinism & contract linter
  (:mod:`repro.analysis`): the programmatic form of ``repro check``.
* :func:`profile` / :func:`trace` — the observability subsystem
  (:mod:`repro.obs`): phase timers, hot-path counters and optional
  ``cProfile`` for one scenario campaign, or a virtual-time event trace
  exported as JSONL / Chrome ``trace_event``.  The programmatic forms of
  ``repro profile run`` and ``repro profile trace``.
* :func:`metrics` — fixed-interval virtual-time metric series for one
  scenario campaign, exported as byte-stable JSONL (plus optional CSV and
  Chrome counter tracks).  The programmatic form of ``repro metrics
  record``; render with :mod:`repro.obs` dashboard helpers or ``repro
  metrics show|plot``.
* :func:`bench` — measure a named benchmark suite into a
  :class:`~repro.bench.BenchReport` and optionally gate it against a
  baseline (:func:`repro.bench.compare_reports`).  The programmatic form
  of ``repro bench run``.

Quickstart::

    from repro import api

    table = api.run("table5", scale="smoke", jobs=4)
    print(table.render())
    api.save_results(table, "table5.jsonl")

    loaded = api.load_results("table5.jsonl")
    print(loaded.pivot().render())          # identical table, from records
    assert api.compare(table.result_set, loaded).identical
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Any, Optional, Sequence, Union

from .errors import ExperimentError, ResultsError
from .experiments.config import SCALES, ExperimentConfig, ExperimentScale
from .experiments.registry import run_experiment
from .results import CampaignObserver, ResultDiff, ResultSet, diff_result_sets
from .store import CampaignStore, open_store, resume_experiment

__all__ = [
    "run",
    "sweep",
    "resume",
    "validate",
    "check",
    "profile",
    "trace",
    "metrics",
    "bench",
    "load_results",
    "save_results",
    "compare",
]

#: Things accepted wherever a result set is expected: the set itself, a
#: result object carrying one, or a path to a saved file.
ResultsLike = Union[ResultSet, str, "os.PathLike[str]", Any]

#: Things accepted wherever a campaign store is expected: an open store or
#: the path of its directory (created on first use).
StoreLike = Union[CampaignStore, str, "os.PathLike[str]"]


def _resolve_config(
    config: Optional[ExperimentConfig],
    scale: Optional[Union[str, ExperimentScale]],
    seed: Optional[int],
    jobs: Optional[int],
    observers: Sequence[CampaignObserver],
    store: Optional[StoreLike] = None,
    ci_target: Optional[float] = None,
) -> ExperimentConfig:
    """Fold the keyword overrides into one :class:`ExperimentConfig`."""
    resolved = config if config is not None else ExperimentConfig()
    if scale is not None:
        if isinstance(scale, str):
            try:
                scale = SCALES[scale]
            except KeyError:
                raise ExperimentError(
                    f"unknown scale {scale!r}; available: {sorted(SCALES)}"
                ) from None
        resolved = resolved.with_scale(scale)
    if seed is not None:
        resolved = resolved.with_seed(seed)
    if jobs is not None:
        resolved = resolved.with_jobs(jobs)
    if observers:
        resolved = replace(
            resolved, observers=tuple(resolved.observers) + tuple(observers)
        )
    if store is not None:
        resolved = resolved.with_store(open_store(store))
    if ci_target is not None:
        resolved = resolved.with_ci_target(ci_target)
    return resolved


def run(
    experiment: str,
    *,
    config: Optional[ExperimentConfig] = None,
    scale: Optional[Union[str, ExperimentScale]] = None,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    observers: Sequence[CampaignObserver] = (),
    store: Optional[StoreLike] = None,
    ci_target: Optional[float] = None,
):
    """Run one registered experiment and return its result object.

    ``experiment`` is a registry id (``repro --list`` /
    :func:`repro.experiments.experiment_ids`).  ``scale`` (a name from
    ``"full"`` / ``"bench"`` / ``"smoke"`` or an
    :class:`~repro.experiments.ExperimentScale`), ``seed`` and ``jobs``
    override the corresponding fields of ``config``; ``observers`` stream
    every cell completion.  ``store`` (a :class:`~repro.store.CampaignStore`
    or a directory path, created on first use) attaches the campaign store:
    cells already journaled are recovered instead of simulated, fresh cells
    are durably committed as they complete, and the result — table, records,
    saved files — is byte-identical with a cold, warm or interrupted-then-
    resumed store.  Table experiments return a
    :class:`~repro.experiments.runner.TableResult` whose ``result_set``
    holds one :class:`~repro.results.RunRecord` per run — the table itself
    is a :meth:`~repro.results.ResultSet.pivot` view over those records.

    ``ci_target`` switches table campaigns to **sequential stopping**:
    repetition rounds are added until the relative 95% CI half-width of
    every (heuristic, metatask) group's ``config.ci_metric`` is at most
    this value (knobs: ``ExperimentConfig.ci_*``).  Cell means then render
    as ``mean ± half-width`` and the convergence outcome lands in the table
    notes.  It is a number-determining knob (it decides how many cells run)
    and participates in the configuration fingerprint.

    Determinism contract: the records (hence the table, hence a saved
    results file) are identical for every ``jobs`` value and every store
    temperature.
    """
    resolved = _resolve_config(config, scale, seed, jobs, observers, store, ci_target)
    return run_experiment(experiment, resolved)


def resume(
    experiment: str,
    store: StoreLike,
    *,
    config: Optional[ExperimentConfig] = None,
    scale: Optional[Union[str, ExperimentScale]] = None,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    observers: Sequence[CampaignObserver] = (),
):
    """Resume an interrupted campaign from its store's journal.

    Diffs the experiment's planned cells against what ``store`` already
    journaled, executes only the missing ones, and returns a
    :class:`~repro.store.ResumeReport` whose ``result`` is byte-identical to
    an uninterrupted run.  Running against an already-complete store is a
    cheap verification: zero cells execute.  The shell form is
    ``repro campaign resume <experiment> --store DIR``.
    """
    resolved = _resolve_config(config, scale, seed, jobs, observers)
    return resume_experiment(experiment, open_store(store), config=resolved)


def sweep(
    scenarios: Optional[Sequence[str]] = None,
    *,
    config: Optional[ExperimentConfig] = None,
    scale: Optional[Union[str, ExperimentScale]] = None,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    metric: str = "sumflow",
    observers: Sequence[CampaignObserver] = (),
    store: Optional[StoreLike] = None,
    ci_target: Optional[float] = None,
):
    """Run a scenario sweep and return its
    :class:`~repro.scenarios.sweep.ScenarioSweepResult`.

    ``scenarios`` defaults to every registered scenario; ``metric`` is the
    ranking tie-break (lower is better).  ``store`` attaches a campaign
    store shared by every scenario of the sweep — a warm sweep recovers all
    its cells from the journal and executes zero simulations.  ``ci_target``
    runs every scenario's campaign with sequential stopping (see
    :func:`run`); the cross-scenario ranking then marks heuristics whose
    CIs overlap as ties (``#r=``) instead of claiming a strict order.  The
    returned object carries every scenario's records in one combined
    ``result_set`` ready for :func:`save_results`.
    """
    from .scenarios import run_sweep  # deferred: keeps `import repro.api` light

    resolved = _resolve_config(config, scale, seed, jobs, observers, store, ci_target)
    return run_sweep(names=scenarios, config=resolved, metric=metric)


def validate(
    *,
    seed: int = 2003,
    quick: bool = False,
    include_sequential: bool = True,
    json_path: Optional[Union[str, "os.PathLike[str]"]] = None,
):
    """Validate the simulator against closed-form queueing baselines.

    Runs the analytical validation suite
    (:func:`repro.stats.run_validation`): the fluid simulator's M/M/1 and
    M/M/c mean response times must fall inside their 95% confidence
    intervals around the exact Erlang-C values, and (unless
    ``include_sequential`` is false) a sequential campaign must be
    byte-identical at ``jobs=1`` and ``jobs=2``.  ``quick`` trades
    statistical power for speed (CI smoke use).  Returns the
    :class:`~repro.stats.ValidationReport`; check ``report.passed``.
    ``json_path`` additionally writes the machine-readable report (the CI
    artifact).  The shell form is ``repro validate``.
    """
    from .stats import run_validation  # deferred: keeps `import repro.api` light

    report = run_validation(
        seed=seed, quick=quick, include_sequential=include_sequential
    )
    if json_path is not None:
        report.save_json(json_path)
    return report


def check(
    paths: Optional[Sequence[Union[str, "os.PathLike[str]"]]] = None,
    *,
    baseline: Optional[Union[str, "os.PathLike[str]"]] = None,
    update_baseline: bool = False,
    select: Optional[Sequence[str]] = None,
    json_path: Optional[Union[str, "os.PathLike[str]"]] = None,
):
    """Statically check sources against the determinism & contract rules.

    Runs the :mod:`repro.analysis` linter (stdlib ``ast``, no third-party
    dependencies) over ``paths`` — by default the installed ``repro``
    package: seeded RNG only, no wall clocks in the simulation path, ordered
    iteration wherever bytes are persisted, declared fingerprint roles on
    every config field, atomic persistence writes, exact float text, a
    stable ``__all__`` surface and library-hierarchy exceptions in dispatch
    paths.  Returns the :class:`~repro.analysis.CheckReport`; gate on
    ``report.clean`` / ``report.exit_code``.  ``json_path`` additionally
    writes the machine-readable report (the CI ``lint-report`` artifact).
    The shell form is ``repro check``.
    """
    from .analysis import run_check  # deferred: keeps `import repro.api` light

    return run_check(
        None if paths is None else [os.fspath(p) for p in paths],
        baseline=baseline,
        update_baseline=update_baseline,
        select=select,
        json_path=json_path,
    )


def profile(
    scenario: str,
    *,
    tasks: Optional[int] = None,
    metatasks: Optional[int] = None,
    repetitions: Optional[int] = None,
    heuristics: Optional[Sequence[str]] = None,
    seed: int = 2003,
    jobs: int = 1,
    cprofile: bool = False,
    top: int = 20,
    json_path: Optional[Union[str, "os.PathLike[str]"]] = None,
):
    """Profile one scenario campaign and return its
    :class:`~repro.obs.PerfReport`.

    Runs ``scenario`` (any registry name) at a harness-controlled size —
    ``tasks`` per metatask, ``metatasks`` × ``repetitions`` cells per
    heuristic, both defaulting to one representative cell — under wall-clock
    phase timers (setup / workload-gen / simulate / aggregate / report) and
    collects the hot-path counters of every run (fluid queue and network
    events, agent traffic, HTM activity).  ``cprofile=True`` additionally
    wraps the simulate phase in :mod:`cProfile` and reports the ``top``
    functions by cumulative time (forced off when ``jobs > 1``).
    ``json_path`` writes the machine-readable ``perf-report.json`` (the CI
    profile-smoke artifact).  Wall-clock numbers vary run to run; the
    records underneath stay deterministic.  The shell form is
    ``repro profile run``.
    """
    from .obs.profile import profile_scenario  # deferred: keeps `import repro.api` light

    report = profile_scenario(
        scenario,
        tasks=tasks,
        metatasks=metatasks,
        repetitions=repetitions,
        heuristics=heuristics,
        seed=seed,
        jobs=jobs,
        profile=cprofile,
        top=top,
    )
    if json_path is not None:
        report.save_json(json_path)
    return report


def trace(
    scenario: str,
    out: Union[str, "os.PathLike[str]"],
    *,
    chrome_out: Optional[Union[str, "os.PathLike[str]"]] = None,
    tasks: Optional[int] = None,
    metatasks: Optional[int] = None,
    repetitions: Optional[int] = None,
    heuristics: Optional[Sequence[str]] = None,
    seed: int = 2003,
    jobs: int = 1,
    limit: Optional[int] = None,
):
    """Trace one scenario campaign and write the virtual-time event files.

    Runs ``scenario`` with the :mod:`repro.obs` trace bus enabled and writes
    one JSONL line per event to ``out`` — task lifecycle, dispatch decisions
    with per-candidate heuristic scores and report staleness, monitor
    reports, fault windows, HTM predictions.  Timestamps are virtual
    simulation seconds, so the file is a deterministic function of the
    campaign plan: byte-identical at any ``jobs`` level.  ``chrome_out``
    additionally writes the Chrome ``trace_event`` export (open in
    ``chrome://tracing`` or ui.perfetto.dev); ``limit`` bounds the per-cell
    event ring.  Returns the :class:`~repro.obs.profile.TraceRunResult`.
    The shell form is ``repro profile trace``.
    """
    from .obs.profile import trace_scenario  # deferred: keeps `import repro.api` light

    return trace_scenario(
        scenario,
        out=os.fspath(out),
        chrome_out=None if chrome_out is None else os.fspath(chrome_out),
        tasks=tasks,
        metatasks=metatasks,
        repetitions=repetitions,
        heuristics=heuristics,
        seed=seed,
        jobs=jobs,
        limit=limit,
    )


def metrics(
    scenario: str,
    out: Union[str, "os.PathLike[str]"],
    *,
    csv_out: Optional[Union[str, "os.PathLike[str]"]] = None,
    chrome_out: Optional[Union[str, "os.PathLike[str]"]] = None,
    tasks: Optional[int] = None,
    metatasks: Optional[int] = None,
    repetitions: Optional[int] = None,
    heuristics: Optional[Sequence[str]] = None,
    seed: int = 2003,
    jobs: int = 1,
    interval: Optional[float] = None,
    window: Optional[float] = None,
):
    """Record one scenario campaign's virtual-time metric series.

    Runs ``scenario`` with the :mod:`repro.obs` metrics sampler attached —
    every ``interval`` virtual seconds (default 60) each cell samples queue
    depth and utilization per server, in-flight tasks, cumulative
    completions / failures, mean report staleness, HTM backlog and sliding-
    window throughput / latency (``window`` defaults to 5× the interval) —
    and writes the series as versioned JSONL to ``out``.  Sampling reads
    simulation state without touching it, so the run's records equal an
    unsampled run's and the JSONL is byte-identical at any ``jobs`` level.
    ``csv_out`` adds a long-format CSV; ``chrome_out`` adds a Chrome
    ``trace_event`` export with the samples as counter tracks.  Returns the
    :class:`~repro.obs.profile.MetricsRunResult`.  The shell form is
    ``repro metrics record``; render files with ``repro metrics show|plot``.
    """
    from .obs.profile import metrics_scenario  # deferred: keeps `import repro.api` light

    return metrics_scenario(
        scenario,
        out=os.fspath(out),
        csv_out=None if csv_out is None else os.fspath(csv_out),
        chrome_out=None if chrome_out is None else os.fspath(chrome_out),
        tasks=tasks,
        metatasks=metatasks,
        repetitions=repetitions,
        heuristics=heuristics,
        seed=seed,
        jobs=jobs,
        interval=interval,
        window=window,
    )


def bench(
    suite: str = "default",
    *,
    cases: Optional[Sequence[str]] = None,
    seed: int = 2003,
    jobs: int = 1,
    json_path: Optional[Union[str, "os.PathLike[str]"]] = None,
):
    """Measure a named benchmark suite and return its
    :class:`~repro.bench.BenchReport`.

    Runs every case of ``suite`` (``"default"`` or ``"smoke"``; ``cases``
    restricts to a subset by name) through the profiling harness and
    collects wall seconds, phase splits, task throughput and the
    deterministic hot-path counters per case.  ``json_path`` writes the
    ``bench-report/v1`` JSON.  Gate against a baseline with
    :func:`repro.bench.compare_reports`, or from the shell with
    ``repro bench compare`` (exit 1 on regression — the CI gate).
    """
    from .bench import get_suite, run_suite  # deferred: keeps `import repro.api` light

    selected = get_suite(suite)
    if cases:
        by_name = {case.name: case for case in selected}
        unknown = [name for name in cases if name not in by_name]
        if unknown:
            raise ExperimentError(
                f"unknown case(s) {unknown} in suite {suite!r} "
                f"(has: {sorted(by_name)})"
            )
        selected = tuple(by_name[name] for name in cases)
    report = run_suite(selected, suite=suite, seed=seed, jobs=jobs)
    if json_path is not None:
        report.save_json(os.fspath(json_path))
    return report


def load_results(path: Union[str, "os.PathLike[str]"]) -> ResultSet:
    """Load a result set saved by :func:`save_results` / ``ResultSet.save``.

    The format is inferred from the extension (``.jsonl`` / ``.json`` /
    ``.csv``); files written by a future schema version are rejected with a
    :class:`~repro.errors.ResultsError`.
    """
    return ResultSet.load(path)


def save_results(results: ResultsLike, path: Union[str, "os.PathLike[str]"]) -> str:
    """Save a result set (or any result object carrying one) to ``path``.

    Accepts a :class:`~repro.results.ResultSet`, a
    :class:`~repro.experiments.runner.TableResult` or a
    :class:`~repro.scenarios.sweep.ScenarioSweepResult`; the extension picks
    the format (see :func:`load_results`).  Returns the path written.
    """
    result_set = _as_result_set(results, allow_paths=False)
    return result_set.save(path)


def compare(a: ResultsLike, b: ResultsLike, *, rel_tol: float = 0.0) -> ResultDiff:
    """Diff two result sets, result objects or saved result files.

    Records are paired on ``(experiment_id, heuristic, metatask_index,
    repetition)``; every metric and provenance difference is reported.
    ``rel_tol`` relaxes metric comparisons (0.0 = exact).  Use
    ``compare(...).identical`` as the determinism check, or ``repro results
    diff`` from the shell.
    """
    return diff_result_sets(
        _as_result_set(a), _as_result_set(b), rel_tol=rel_tol
    )


def _as_result_set(value: ResultsLike, allow_paths: bool = True) -> ResultSet:
    if isinstance(value, ResultSet):
        return value
    carried = getattr(value, "result_set", None)
    if isinstance(carried, ResultSet):
        return carried
    if allow_paths and isinstance(value, (str, os.PathLike)):
        return load_results(value)
    raise ResultsError(
        f"cannot interpret {value!r} as a result set (expected a ResultSet, "
        "a result object carrying one, or a saved results file path)"
    )
